// Package core ties the reproduction together: it wires the simulated
// ISP (the dataset substitute), the probe, the flow store, the
// classifier and the analytics into a Pipeline, and exposes the
// experiment registry — one entry per table and figure of the paper —
// that cmd/edgereport, the benchmarks and the examples all share.
//
// The pipeline is hardened for unattended runs the way the paper's
// five-year deployment had to be: every experiment takes a
// context.Context (cancellation and per-day deadlines), transient
// storage errors retry with capped, deterministically-jittered
// backoff, and in Degrade mode a damaged day is quarantined and
// reported per-day (Pipeline.DayErrors) while every healthy day still
// lands in the figures.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytics"
	"repro/internal/asn"
	"repro/internal/classify"
	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/retry"
	"repro/internal/simnet"
)

// Pipeline cache observability: the memory cache serves experiments
// sharing day windows, the disk cache serves repeated runs. Misses are
// what stage one actually has to compute. store.retries counts
// re-attempts after transient storage faults; store.quarantined_days
// (owned by flowrec) counts corrupt days moved out of the read path.
var (
	mMemHits      = metrics.GetCounter("aggcache.mem_hits")
	mMemMisses    = metrics.GetCounter("aggcache.mem_misses")
	mDiskHits     = metrics.GetCounter("aggcache.disk_hits")
	mDiskMisses   = metrics.GetCounter("aggcache.disk_misses")
	mPartialHits  = metrics.GetCounter("aggcache.partial_hits")
	mGenDayWall   = metrics.GetTimer("store_gen.day_wall")
	mGenRecords   = metrics.GetCounter("store_gen.records")
	mStoreRetries = metrics.GetCounter("store.retries")
	mDegradedDays = metrics.GetCounter("pipeline.degraded_days")
	mHotDayServes = metrics.GetCounter("pipeline.hot_day_serves")
)

// Config parameterises a Pipeline.
type Config struct {
	// Seed drives the simulation; equal seeds give identical datasets.
	Seed uint64
	// Scale sets the subscriber population (zero fields use defaults).
	Scale simnet.Scale
	// Stride is the day-sampling stride for full-span experiments:
	// 1 processes every day of the 54 months, 7 (the default) one day
	// per week.
	Stride int
	// Workers bounds stage-one parallelism; 0 means GOMAXPROCS.
	Workers int
	// ShardsPerDay splits each day's records across this many
	// concurrent shard aggregators and merges the partials — within-
	// day parallelism on top of the across-day worker pool, with
	// byte-identical results for any value (the analytics merge
	// monoid guarantees it). 0 auto-sizes from GOMAXPROCS and
	// Workers; 1 forces the serial per-day fold. Exposed as -shards
	// on the binaries.
	ShardsPerDay int
	// Store, when set, reads flow records from an on-disk lake
	// instead of generating them on the fly. Days missing from the
	// store are treated as probe outages.
	Store *flowrec.Store
	// Classifier overrides the built-in domain→service rules (for
	// curated rule files loaded with classify.ParseRules). Nil means
	// classify.Default().
	Classifier *classify.Classifier
	// AggCacheDir, when set, persists per-day aggregates to disk (gob
	// + gzip) so later runs skip stage one for days already reduced —
	// the materialised-aggregate workflow of section 2.2.
	AggCacheDir string
	// RollupDir, when set, enables the multi-resolution rollup tier:
	// week/month/year windows pre-folded through the merge monoid are
	// persisted here and long-span experiments answer from the
	// coarsest tier that fits instead of re-folding every day. Exposed
	// as -rollup on the binaries.
	RollupDir string
	// MemBudget bounds stage one's live accumulator memory in bytes
	// (an accounting estimate, split across a day's concurrent shard
	// aggregators). Over budget, an aggregator seals its state into a
	// partial, spills it to disk and restarts empty; spilled partials
	// external-merge after the scan with results byte-identical to the
	// unbounded run. 0 (the default) disables spilling. Exposed as
	// -memlimit on the binaries.
	MemBudget int64
	// SpillDir is where over-budget partials spill (a private temp
	// directory per day attempt is created beneath it). Empty means
	// the OS temp dir.
	SpillDir string
	// SpillFanIn bounds how many spill files one external-merge pass
	// opens; 0 means the analytics default. Any value produces
	// byte-identical results — it only trades merge passes for peak
	// open partials.
	SpillFanIn int
	// Sketch switches day aggregation into sketch mode: each day (and
	// therefore each rollup) additionally carries mergeable sketches —
	// HyperLogLog distinct clients/server IPs, SpaceSaving service and
	// domain heavy hitters, t-digest RTT quantiles — trading bounded
	// approximation error for constant-size window summaries. Exact
	// mode (the default) leaves figures byte-identical to the seed.
	Sketch bool

	// Storage overrides the Store/AggCacheDir wiring with an explicit
	// storage backend — how tests interpose the fault injector. When
	// set, flow records are read through it; the aggregate cache is
	// still gated on AggCacheDir being non-empty.
	Storage Storage
	// Degrade switches day-level failures from fatal to partial: the
	// failed day is reported via DayErrors (and quarantined when the
	// error is corruption), every other day completes. Off, any day
	// error fails the whole call — the strict default mirrors the
	// historical behaviour.
	Degrade bool
	// Retry is the backoff discipline for transient storage faults.
	// The zero value defaults to 3 attempts, 25ms base, 500ms cap.
	Retry retry.Policy
	// DayTimeout bounds one day's aggregation (all retry attempts
	// together). Zero means no per-day deadline.
	DayTimeout time.Duration
	// Faults, when set, injects the plan's faults into this
	// pipeline's storage and simulated emission — the chaos-suite
	// hook, also exposed as -faults on the binaries.
	Faults *faultinject.Plan
}

// Pipeline is the assembled system.
type Pipeline struct {
	cfg   Config
	World *simnet.World
	Cls   *classify.Classifier
	RIBs  *asn.RIBSet

	// storage is the wired (possibly fault-wrapped) backend; nil for
	// a pure simulation pipeline with no aggregate cache. fromStore
	// records whether flow records come from storage rather than the
	// world. retry is the composed policy (store.retries counting
	// included).
	storage   Storage
	fromStore bool
	retry     retry.Policy

	mu      sync.Mutex
	cache   map[time.Time]*aggEntry
	dayErrs map[time.Time]error
}

// aggEntry is one day's slot in the in-memory aggregate cache. The
// caller that creates the slot owns computing it; anyone else arriving
// while done is open blocks on it instead of silently skipping the day
// (the old reservation scheme dropped in-flight days from concurrent
// callers' results, as if they were probe outages). After done closes,
// agg is the day's aggregate — nil meaning a real outage or a
// degraded-away failure — unless err is set, in which case the owner
// failed (or was cancelled) and removed the slot so a later call
// recomputes.
type aggEntry struct {
	done chan struct{}
	agg  *analytics.DayAgg
	err  error
	// cols is the column contract the aggregate is (being) computed
	// under — zero meaning all columns. A cached entry only serves a
	// request whose column set it covers; a narrower resolved entry is
	// evicted and recomputed at the union of both sets.
	cols flowrec.ColumnSet
	// gen is the lake generation the aggregate was computed under. A
	// resolved entry from an older generation is evicted at claim time:
	// the lake mutated (WriteDay, quarantine, live-ingest checkpoint)
	// since it was built, so its bytes may no longer match a fresh
	// derivation. Batch pipelines never bump mid-run, so this only
	// fires when a live writer shares the lake.
	gen uint64
}

// covers reports whether the entry's aggregate satisfies a request for
// the given column set (zero ≡ all on both sides).
func (e *aggEntry) covers(cols flowrec.ColumnSet) bool { return e.cols.Covers(cols) }

// resolved reports whether the entry's computation has finished. Only
// meaningful under p.mu for deciding eviction; waiters use e.done.
func (e *aggEntry) resolved() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// New assembles a pipeline.
func New(cfg Config) *Pipeline {
	if cfg.Stride <= 0 {
		cfg.Stride = 7
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	w := simnet.NewWorld(cfg.Seed, cfg.Scale)
	cls := cfg.Classifier
	if cls == nil {
		cls = classify.Default()
	}

	fromStore := cfg.Storage != nil || cfg.Store != nil
	storage := cfg.Storage
	if storage == nil && (cfg.Store != nil || cfg.AggCacheDir != "" || cfg.RollupDir != "") {
		storage = NewDiskStorage(cfg.Store, cfg.AggCacheDir).WithRollupDir(cfg.RollupDir)
	}
	if cfg.Faults != nil && storage != nil {
		storage = faultinject.Wrap(storage, cfg.Faults)
	}

	pol := cfg.Retry
	if pol.Attempts <= 0 {
		pol = retry.Policy{Attempts: 3, Base: 25 * time.Millisecond, Max: 500 * time.Millisecond,
			Seed: cfg.Seed, Sleep: cfg.Retry.Sleep, OnRetry: cfg.Retry.OnRetry}
	}
	user := pol.OnRetry
	pol.OnRetry = func(attempt int, err error) {
		mStoreRetries.Inc()
		if user != nil {
			user(attempt, err)
		}
	}

	return &Pipeline{
		cfg:       cfg,
		World:     w,
		Cls:       cls,
		RIBs:      w.RIBs(),
		storage:   storage,
		fromStore: fromStore,
		retry:     pol,
		cache:     make(map[time.Time]*aggEntry),
		dayErrs:   make(map[time.Time]error),
	}
}

// Stride returns the configured day-sampling stride.
func (p *Pipeline) Stride() int { return p.cfg.Stride }

// Storage returns the wired storage backend (fault wrapper included),
// or nil for a pure simulation pipeline.
func (p *Pipeline) Storage() Storage { return p.storage }

// FlowStore returns the underlying flowrec day store, or nil when the
// pipeline is simulation-fed (or wired through a custom Storage). The
// serve layer's admin compaction needs the store itself: compaction
// rewrites day files in place, which is below the Storage surface.
func (p *Pipeline) FlowStore() *flowrec.Store { return p.cfg.Store }

// Generation returns the lake generation (see Storage.Generation);
// 0 — a constant, never-invalidating generation — for a pure
// simulation pipeline, whose "lake" is a deterministic world that
// cannot mutate.
func (p *Pipeline) Generation() uint64 {
	if p.storage == nil {
		return 0
	}
	return p.storage.Generation()
}

// BumpGeneration advances the lake generation after an out-of-band
// mutation (admin-triggered compaction, rollup prewarm). A no-op
// without storage.
func (p *Pipeline) BumpGeneration() uint64 {
	if p.storage == nil {
		return 0
	}
	return p.storage.BumpGeneration()
}

// faultPlan returns the configured plan as a simnet.FaultPlan,
// carefully nil when unset (a typed-nil interface would dodge the
// call-site nil checks).
func (p *Pipeline) faultPlan() simnet.FaultPlan {
	if p.cfg.Faults == nil {
		return nil
	}
	return p.cfg.Faults
}

// Source returns the record source experiments aggregate from: the
// storage backend when configured, the simulation world otherwise —
// either one filtered through the fault plan when chaos is on.
func (p *Pipeline) Source() analytics.Source {
	if p.fromStore {
		return analytics.StoreSource{Store: p.storage}
	}
	plan := p.faultPlan()
	return analytics.FuncSource(func(day time.Time, fn func(*flowrec.Record)) error {
		if !p.World.EmitDayFaults(day, plan, fn) {
			return analytics.ErrNoData // injected probe outage
		}
		return nil
	})
}

// DayErrors returns the per-day error report accumulated by degraded
// runs, sorted by day. Empty means every requested day either
// aggregated or was a genuine outage.
func (p *Pipeline) DayErrors() []analytics.DayError {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]analytics.DayError, 0, len(p.dayErrs))
	for d, err := range p.dayErrs {
		out = append(out, analytics.DayError{Day: d, Err: err})
	}
	sortDayErrors(out)
	return out
}

func sortDayErrors(errs []analytics.DayError) {
	for i := 1; i < len(errs); i++ {
		for j := i; j > 0 && errs[j].Day.Before(errs[j-1].Day); j-- {
			errs[j], errs[j-1] = errs[j-1], errs[j]
		}
	}
}

// Aggregate runs stage one for the given days, serving repeated days
// from an in-memory cache so experiments sharing windows (Figures 2,
// 4 and 10 all want April 2014/2017) pay once. Concurrent callers
// asking for overlapping windows each compute a disjoint share and
// wait for the rest — no day is ever computed twice or dropped.
//
// Cancelling ctx aborts the computation and releases this caller's
// day reservations, so a later Aggregate recomputes them instead of
// inheriting a cancelled result. In Degrade mode, days that fail after
// retries are reported via DayErrors and return as gaps (like
// outages); otherwise the first day error fails the call.
func (p *Pipeline) Aggregate(ctx context.Context, days []time.Time) ([]*analytics.DayAgg, error) {
	return p.AggregateCols(ctx, days, 0)
}

// AggregateCols is Aggregate with a column contract: the aggregates
// only need the accumulators derivable from cols (zero means all), so
// a columnar store decodes just those columns and the rest of the day
// file is skipped. The in-memory and disk caches answer a request only
// when the cached aggregate's column set covers it; a narrower cached
// day is recomputed at the union of the old and new sets, so repeated
// mixed-experiment runs converge instead of thrashing. Simulation-fed
// pipelines ignore cols — the world emits full records anyway and the
// full-width aggregate serves every experiment.
func (p *Pipeline) AggregateCols(ctx context.Context, days []time.Time, cols flowrec.ColumnSet) ([]*analytics.DayAgg, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	eff := flowrec.ColumnSet(0)
	if p.fromStore {
		eff = analytics.NormalizeCols(cols)
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Claim days nobody holds; collect the entries of the rest.
		// A resolved entry that does not cover eff — or was computed
		// under an older lake generation — is evicted here and
		// recomputed — at the union of its set and ours, so whoever
		// needed the old columns still hits on the replacement.
		curGen := p.Generation()
		stale := func(e *aggEntry) bool {
			return e != nil && e.resolved() && (!e.covers(eff) || e.gen != curGen)
		}
		entryOf := make(map[time.Time]*aggEntry, len(days))
		var owned []time.Time
		p.mu.Lock()
		runEff := eff
		for _, d := range days {
			if e := p.cache[d]; stale(e) {
				runEff = runEff.Norm() | e.cols.Norm()
			}
		}
		for _, d := range days {
			if _, ok := entryOf[d]; ok {
				continue // duplicate day in the request
			}
			e := p.cache[d]
			if stale(e) {
				delete(p.cache, d)
				e = nil
			}
			if e == nil {
				e = &aggEntry{done: make(chan struct{}), cols: runEff, gen: curGen}
				p.cache[d] = e
				owned = append(owned, d)
			}
			entryOf[d] = e
		}
		p.mu.Unlock()
		mMemHits.Add(uint64(len(days) - len(owned)))
		mMemMisses.Add(uint64(len(owned)))

		if len(owned) > 0 {
			if err := p.computeDays(ctx, owned, entryOf, runEff); err != nil {
				return nil, err
			}
		}

		// Wait out days other callers are computing. An owner that
		// failed marked its entries broken and un-reserved the days, so
		// loop back and claim them ourselves — likewise an in-flight
		// owner whose column set turns out not to cover ours.
		retryClaim := false
		for _, e := range entryOf {
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if e.err != nil || !e.covers(eff) {
				retryClaim = true
			}
		}
		if retryClaim {
			continue
		}

		out := make([]*analytics.DayAgg, 0, len(days))
		for _, d := range days {
			if a := entryOf[d].agg; a != nil {
				out = append(out, a)
			}
			// nil aggregates are outages (store gaps) or degraded-away
			// failures: skipped, like the paper's plots skip
			// probe-down periods.
		}
		return out, nil
	}
}

// computeDays produces the aggregates for the days this caller claimed
// and resolves their cache entries. On error (including cancellation)
// every owned entry is marked broken and un-reserved, so a retry
// recomputes the days rather than mistaking them for permanent
// outages. In Degrade mode per-day failures resolve to nil aggregates
// (gaps) and land in the DayErrors report instead of failing the call.
func (p *Pipeline) computeDays(ctx context.Context, owned []time.Time, entryOf map[time.Time]*aggEntry, cols flowrec.ColumnSet) (err error) {
	aggOf := make(map[time.Time]*analytics.DayAgg, len(owned))
	failed := make(map[time.Time]error)
	defer func() {
		p.mu.Lock()
		for _, d := range owned {
			e := entryOf[d]
			if err != nil {
				e.err = err
				delete(p.cache, d)
			} else {
				e.agg = aggOf[d]
			}
			close(e.done)
		}
		if err == nil {
			for d, derr := range failed {
				p.dayErrs[d] = derr
			}
		}
		p.mu.Unlock()
	}()

	// Disk cache: days reduced by an earlier run load in parallel —
	// each load is a gzip+gob decode, and serial loading is what used
	// to gate warm-cache startup on a ~2k-day span. Load errors (a
	// faulted or damaged cache) degrade to recomputation, never to
	// failure: the cache is an optimisation.
	missing := owned
	if p.cacheAggs() {
		loaded := make([]*analytics.DayAgg, len(owned))
		p.eachIndex(len(owned), func(i int) {
			// A cached aggregate only counts when its column contract
			// covers this run's: a narrower one (cached by a pruned
			// experiment) reads as a miss and the day recomputes wide.
			// Likewise a sketch-mode run cannot use an exact-mode
			// cache entry — it carries no sketches to merge.
			if agg, lerr := p.storage.LoadAgg(owned[i]); lerr == nil && agg != nil && agg.Cols.Covers(cols) &&
				(!p.cfg.Sketch || agg.Sketches != nil) {
				loaded[i] = agg
				return
			}
			// Final-aggregate miss: a sharded run may have cached the
			// day as unmerged shard partials instead — merging them is
			// the same reduce step the live path runs, minus reading
			// the records.
			if parts, lerr := p.storage.LoadPartials(owned[i]); lerr == nil && len(parts) > 0 {
				if agg, merr := analytics.MergePartials(owned[i], parts); merr == nil && agg.Cols.Covers(cols) &&
					(!p.cfg.Sketch || agg.Sketches != nil) {
					loaded[i] = agg
					mPartialHits.Inc()
					// A day served from partials that has no sealed log
					// yet is a live ("hot") day: the ingest daemon's
					// checkpoints are answering for records whose day
					// file does not exist.
					if !p.storage.HasDay(owned[i]) {
						mHotDayServes.Inc()
					}
				}
			}
		})
		missing = nil
		for i, d := range owned {
			if loaded[i] != nil {
				mDiskHits.Inc()
				aggOf[d] = loaded[i]
			} else {
				mDiskMisses.Inc()
				missing = append(missing, d)
			}
		}
	}

	if len(missing) > 0 {
		runCfg := analytics.RunConfig{
			Workers:      p.cfg.Workers,
			ShardsPerDay: p.cfg.ShardsPerDay,
			Retry:        p.retry,
			DayTimeout:   p.cfg.DayTimeout,
			Cols:         cols,
			Sketch:       p.cfg.Sketch,
			MemBudget:    p.cfg.MemBudget,
			SpillDir:     p.cfg.SpillDir,
			SpillFanIn:   p.cfg.SpillFanIn,
		}
		// When a day aggregates sharded, cache its unmerged partials;
		// the final SaveAgg below is skipped for those days. Save
		// failures degrade to the SaveAgg fallback, never to a lost
		// aggregate.
		var partialsSaved sync.Map
		if p.cacheAggs() {
			runCfg.OnDayPartials = func(day time.Time, parts []*analytics.Partial) {
				serr := p.retry.Do(ctx, uint64(day.Unix()), func() error {
					return p.storage.SavePartials(day, parts)
				})
				if serr == nil {
					partialsSaved.Store(day, true)
				}
			}
		}
		aggs, dayErrs, runErr := analytics.RunReport(ctx, p.Source(), missing, p.Cls, runCfg)
		if runErr != nil {
			return runErr
		}
		if len(dayErrs) > 0 {
			if !p.cfg.Degrade {
				return dayErrs[0].Err
			}
			for _, de := range dayErrs {
				failed[de.Day] = de.Err
				mDegradedDays.Inc()
				// Corrupt days are quarantined so the next run reads an
				// outage instead of tripping over the same bytes; the
				// quarantine failing must not break the degrade path.
				// Rollups that folded the now-gone day are dropped too —
				// once the day is repaired and rewritten, the covering
				// windows must recompute rather than serve stale merges.
				if p.storage != nil && errorsIsCorrupt(de.Err) {
					_ = p.storage.QuarantineDay(de.Day)
					_ = p.storage.InvalidateRollups(de.Day)
				}
			}
		}
		for _, a := range aggs {
			aggOf[a.Day] = a
		}
		if p.cacheAggs() {
			saveErrs := make([]error, len(aggs))
			p.eachIndex(len(aggs), func(i int) {
				if _, ok := partialsSaved.Load(aggs[i].Day); ok {
					return // cached as shard partials already
				}
				saveErrs[i] = p.retry.Do(ctx, uint64(aggs[i].Day.Unix()), func() error {
					return p.storage.SaveAgg(aggs[i])
				})
			})
			for _, serr := range saveErrs {
				if serr != nil {
					if p.cfg.Degrade {
						// The aggregate exists in memory; a cache-save
						// failure only costs the next run a recompute.
						continue
					}
					return serr
				}
			}
		}
	}
	return nil
}

// cacheAggs reports whether per-day aggregates persist through storage.
func (p *Pipeline) cacheAggs() bool {
	return p.storage != nil && p.cfg.AggCacheDir != ""
}

// errorsIsCorrupt matches data-damage errors (codec or gzip level).
func errorsIsCorrupt(err error) bool {
	return errors.Is(err, flowrec.ErrCorrupt)
}

// eachIndex runs fn(0..n-1) on the pipeline's bounded worker count.
func (p *Pipeline) eachIndex(n int, fn func(int)) {
	workers := p.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// runStage1 runs stage one outside the day cache (the counterfactual
// worlds of the what-if analysis build their own sources), honouring
// the pipeline's retry, deadline and degrade configuration. Degraded
// day failures land in the DayErrors report.
func (p *Pipeline) runStage1(ctx context.Context, src analytics.Source, days []time.Time, workers int) ([]*analytics.DayAgg, error) {
	aggs, dayErrs, err := analytics.RunReport(ctx, src, days, p.Cls,
		analytics.RunConfig{Workers: workers, ShardsPerDay: p.cfg.ShardsPerDay,
			Retry: p.retry, DayTimeout: p.cfg.DayTimeout,
			MemBudget: p.cfg.MemBudget, SpillDir: p.cfg.SpillDir,
			SpillFanIn: p.cfg.SpillFanIn})
	if err != nil {
		return nil, err
	}
	if len(dayErrs) > 0 {
		if !p.cfg.Degrade {
			return nil, dayErrs[0].Err
		}
		p.mu.Lock()
		for _, de := range dayErrs {
			p.dayErrs[de.Day] = de.Err
			mDegradedDays.Inc()
		}
		p.mu.Unlock()
	}
	return aggs, nil
}

// GenerateStore materialises the given days of the simulation into dst
// — the "copy logs to long-term storage" step. A bounded pool of
// Workers goroutines pulls days from a shared index (never one
// goroutine per day: a Stride:1 span is ~1975 days), transient write
// faults retry with backoff, and the total record count is reported.
// Fault-plan outage days are skipped entirely (they become store
// gaps); cancellation stops the pool between days.
func (p *Pipeline) GenerateStore(ctx context.Context, dst Storage, days []time.Time) (uint64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := p.cfg.Workers
	if workers > len(days) {
		workers = len(days)
	}
	if len(days) == 0 {
		return 0, nil
	}
	plan := p.faultPlan()
	var total atomic.Uint64
	errs := make([]error, len(days))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(days) {
					return
				}
				day := days[i]
				t0 := time.Now()
				var n uint64
				err := p.retry.Do(ctx, uint64(day.Unix()), func() error {
					var wn uint64
					wn, werr := dst.WriteDay(day, func(write func(*flowrec.Record) error) error {
						var emitErr error
						emitted := p.World.EmitDayFaults(day, plan, func(r *flowrec.Record) {
							if emitErr == nil {
								emitErr = write(r)
							}
						})
						if !emitted {
							return errSkipDay
						}
						return emitErr
					})
					n = wn
					return werr
				})
				mGenDayWall.ObserveSince(t0)
				if err != nil {
					if errors.Is(err, errSkipDay) {
						continue // injected outage: leave a store gap
					}
					errs[i] = fmt.Errorf("core: generating %s: %w", day.Format("2006-01-02"), err)
					continue
				}
				total.Add(n)
				mGenRecords.Add(n)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return total.Load(), err
	}
	for _, err := range errs {
		if err != nil {
			return total.Load(), err
		}
	}
	return total.Load(), nil
}

// errSkipDay aborts a WriteDay whose day an injected outage suppressed.
var errSkipDay = fmt.Errorf("core: day suppressed by fault plan")

// SpanDays returns the experiment's full-span sample under the
// configured stride.
func (p *Pipeline) SpanDays() []time.Time { return simnet.Days(p.cfg.Stride) }

// MonthDays lists every day of one month.
func MonthDays(year int, month time.Month) []time.Time {
	start := time.Date(year, month, 1, 0, 0, 0, 0, time.UTC)
	var out []time.Time
	for d := start; d.Month() == month; d = d.AddDate(0, 0, 1) {
		out = append(out, d)
	}
	return out
}

// RangeDays lists days from start to end inclusive with a stride.
func RangeDays(start, end time.Time, stride int) []time.Time {
	if stride < 1 {
		stride = 1
	}
	var out []time.Time
	for d := start; !d.After(end); d = d.AddDate(0, 0, stride) {
		out = append(out, d)
	}
	return out
}
