// Package core ties the reproduction together: it wires the simulated
// ISP (the dataset substitute), the probe, the flow store, the
// classifier and the analytics into a Pipeline, and exposes the
// experiment registry — one entry per table and figure of the paper —
// that cmd/edgereport, the benchmarks and the examples all share.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytics"
	"repro/internal/asn"
	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// Pipeline cache observability: the memory cache serves experiments
// sharing day windows, the disk cache serves repeated runs. Misses are
// what stage one actually has to compute.
var (
	mMemHits    = metrics.GetCounter("aggcache.mem_hits")
	mMemMisses  = metrics.GetCounter("aggcache.mem_misses")
	mDiskHits   = metrics.GetCounter("aggcache.disk_hits")
	mDiskMisses = metrics.GetCounter("aggcache.disk_misses")
	mGenDayWall = metrics.GetTimer("store_gen.day_wall")
	mGenRecords = metrics.GetCounter("store_gen.records")
)

// Config parameterises a Pipeline.
type Config struct {
	// Seed drives the simulation; equal seeds give identical datasets.
	Seed uint64
	// Scale sets the subscriber population (zero fields use defaults).
	Scale simnet.Scale
	// Stride is the day-sampling stride for full-span experiments:
	// 1 processes every day of the 54 months, 7 (the default) one day
	// per week.
	Stride int
	// Workers bounds stage-one parallelism; 0 means GOMAXPROCS.
	Workers int
	// Store, when set, reads flow records from an on-disk lake
	// instead of generating them on the fly. Days missing from the
	// store are treated as probe outages.
	Store *flowrec.Store
	// Classifier overrides the built-in domain→service rules (for
	// curated rule files loaded with classify.ParseRules). Nil means
	// classify.Default().
	Classifier *classify.Classifier
	// AggCacheDir, when set, persists per-day aggregates to disk (gob
	// + gzip) so later runs skip stage one for days already reduced —
	// the materialised-aggregate workflow of section 2.2.
	AggCacheDir string
}

// Pipeline is the assembled system.
type Pipeline struct {
	cfg   Config
	World *simnet.World
	Cls   *classify.Classifier
	RIBs  *asn.RIBSet

	mu    sync.Mutex
	cache map[time.Time]*aggEntry
}

// aggEntry is one day's slot in the in-memory aggregate cache. The
// caller that creates the slot owns computing it; anyone else arriving
// while done is open blocks on it instead of silently skipping the day
// (the old reservation scheme dropped in-flight days from concurrent
// callers' results, as if they were probe outages). After done closes,
// agg is the day's aggregate — nil meaning a real outage — unless err
// is set, in which case the owner failed and removed the slot so a
// later call recomputes.
type aggEntry struct {
	done chan struct{}
	agg  *analytics.DayAgg
	err  error
}

// New assembles a pipeline.
func New(cfg Config) *Pipeline {
	if cfg.Stride <= 0 {
		cfg.Stride = 7
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	w := simnet.NewWorld(cfg.Seed, cfg.Scale)
	cls := cfg.Classifier
	if cls == nil {
		cls = classify.Default()
	}
	return &Pipeline{
		cfg:   cfg,
		World: w,
		Cls:   cls,
		RIBs:  w.RIBs(),
		cache: make(map[time.Time]*aggEntry),
	}
}

// Stride returns the configured day-sampling stride.
func (p *Pipeline) Stride() int { return p.cfg.Stride }

// Source returns the record source experiments aggregate from: the
// store when configured, the simulation world otherwise.
func (p *Pipeline) Source() analytics.Source {
	if p.cfg.Store != nil {
		return analytics.StoreSource{Store: p.cfg.Store}
	}
	return analytics.FuncSource(func(day time.Time, fn func(*flowrec.Record)) error {
		p.World.EmitDay(day, fn)
		return nil
	})
}

// Aggregate runs stage one for the given days, serving repeated days
// from an in-memory cache so experiments sharing windows (Figures 2,
// 4 and 10 all want April 2014/2017) pay once. Concurrent callers
// asking for overlapping windows each compute a disjoint share and
// wait for the rest — no day is ever computed twice or dropped.
func (p *Pipeline) Aggregate(days []time.Time) ([]*analytics.DayAgg, error) {
	for {
		// Claim days nobody holds; collect the entries of the rest.
		entryOf := make(map[time.Time]*aggEntry, len(days))
		var owned []time.Time
		p.mu.Lock()
		for _, d := range days {
			if _, ok := entryOf[d]; ok {
				continue // duplicate day in the request
			}
			e := p.cache[d]
			if e == nil {
				e = &aggEntry{done: make(chan struct{})}
				p.cache[d] = e
				owned = append(owned, d)
			}
			entryOf[d] = e
		}
		p.mu.Unlock()
		mMemHits.Add(uint64(len(days) - len(owned)))
		mMemMisses.Add(uint64(len(owned)))

		if len(owned) > 0 {
			if err := p.computeDays(owned, entryOf); err != nil {
				return nil, err
			}
		}

		// Wait out days other callers are computing. An owner that
		// failed marked its entries broken and un-reserved the days, so
		// loop back and claim them ourselves.
		retry := false
		for _, e := range entryOf {
			<-e.done
			if e.err != nil {
				retry = true
			}
		}
		if retry {
			continue
		}

		out := make([]*analytics.DayAgg, 0, len(days))
		for _, d := range days {
			if a := entryOf[d].agg; a != nil {
				out = append(out, a)
			}
			// nil aggregates are outages (store gaps): skipped, like
			// the paper's plots skip probe-down periods.
		}
		return out, nil
	}
}

// computeDays produces the aggregates for the days this caller claimed
// and resolves their cache entries. On error every owned entry is
// marked broken and un-reserved, so a retry recomputes the days rather
// than mistaking them for permanent outages.
func (p *Pipeline) computeDays(owned []time.Time, entryOf map[time.Time]*aggEntry) (err error) {
	aggOf := make(map[time.Time]*analytics.DayAgg, len(owned))
	defer func() {
		p.mu.Lock()
		for _, d := range owned {
			e := entryOf[d]
			if err != nil {
				e.err = err
				delete(p.cache, d)
			} else {
				e.agg = aggOf[d]
			}
			close(e.done)
		}
		p.mu.Unlock()
	}()

	// Disk cache: days reduced by an earlier run load in parallel —
	// each load is a gzip+gob decode, and serial loading is what used
	// to gate warm-cache startup on a ~2k-day span.
	missing := owned
	if p.cfg.AggCacheDir != "" {
		loaded := make([]*analytics.DayAgg, len(owned))
		p.eachIndex(len(owned), func(i int) {
			loaded[i] = loadAgg(p.cfg.AggCacheDir, owned[i])
		})
		missing = nil
		for i, d := range owned {
			if loaded[i] != nil {
				mDiskHits.Inc()
				aggOf[d] = loaded[i]
			} else {
				mDiskMisses.Inc()
				missing = append(missing, d)
			}
		}
	}

	if len(missing) > 0 {
		aggs, runErr := analytics.Run(p.Source(), missing, p.Cls, p.cfg.Workers)
		if runErr != nil {
			return runErr
		}
		for _, a := range aggs {
			aggOf[a.Day] = a
		}
		if p.cfg.AggCacheDir != "" {
			saveErrs := make([]error, len(aggs))
			p.eachIndex(len(aggs), func(i int) {
				saveErrs[i] = saveAgg(p.cfg.AggCacheDir, aggs[i])
			})
			for _, serr := range saveErrs {
				if serr != nil {
					return serr
				}
			}
		}
	}
	return nil
}

// eachIndex runs fn(0..n-1) on the pipeline's bounded worker count.
func (p *Pipeline) eachIndex(n int, fn func(int)) {
	workers := p.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// GenerateStore materialises the given days of the simulation into an
// on-disk flow store — the "copy logs to long-term storage" step. A
// bounded pool of Workers goroutines pulls days from a shared index
// (never one goroutine per day: a Stride:1 span is ~1975 days), and
// the total record count is reported.
func (p *Pipeline) GenerateStore(store *flowrec.Store, days []time.Time) (uint64, error) {
	workers := p.cfg.Workers
	if workers > len(days) {
		workers = len(days)
	}
	if len(days) == 0 {
		return 0, nil
	}
	var total atomic.Uint64
	errs := make([]error, len(days))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(days) {
					return
				}
				day := days[i]
				t0 := time.Now()
				w, err := store.CreateDay(day)
				if err != nil {
					errs[i] = err
					continue
				}
				var werr error
				p.World.EmitDay(day, func(r *flowrec.Record) {
					if werr == nil {
						werr = w.Write(r)
					}
				})
				n := w.Count()
				if cerr := w.Close(); werr == nil {
					werr = cerr
				}
				mGenDayWall.ObserveSince(t0)
				if werr != nil {
					errs[i] = fmt.Errorf("core: generating %s: %w", day.Format("2006-01-02"), werr)
					continue
				}
				total.Add(n)
				mGenRecords.Add(n)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return total.Load(), err
		}
	}
	return total.Load(), nil
}

// SpanDays returns the experiment's full-span sample under the
// configured stride.
func (p *Pipeline) SpanDays() []time.Time { return simnet.Days(p.cfg.Stride) }

// MonthDays lists every day of one month.
func MonthDays(year int, month time.Month) []time.Time {
	start := time.Date(year, month, 1, 0, 0, 0, 0, time.UTC)
	var out []time.Time
	for d := start; d.Month() == month; d = d.AddDate(0, 0, 1) {
		out = append(out, d)
	}
	return out
}

// RangeDays lists days from start to end inclusive with a stride.
func RangeDays(start, end time.Time, stride int) []time.Time {
	if stride < 1 {
		stride = 1
	}
	var out []time.Time
	for d := start; !d.After(end); d = d.AddDate(0, 0, stride) {
		out = append(out, d)
	}
	return out
}
