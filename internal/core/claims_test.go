package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/flowrec"
	"repro/internal/simnet"
)

// Paper-claims regression suite: each headline event of the evaluation,
// asserted against *measured* pipeline output at reduced scale. If a
// model or pipeline change breaks a paper claim, one of these fails.

// claimsPipeline is shared across the claims tests (the day cache makes
// that cheap).
var claimsPipeline = New(Config{
	Seed:    2,
	Scale:   simnet.Scale{ADSL: 48, FTTH: 24},
	Workers: 4,
})

// monthShare aggregates one month and returns the protocol share map.
func monthShare(t *testing.T, year int, month time.Month) map[flowrec.WebProto]float64 {
	t.Helper()
	days := MonthDays(year, month)
	// Thin the month to every 3rd day: shares are ratios, sampling is
	// harmless, and the suite stays fast.
	var sampled []time.Time
	for i := 0; i < len(days); i += 3 {
		sampled = append(sampled, days[i])
	}
	aggs, err := claimsPipeline.Aggregate(context.Background(), sampled)
	if err != nil {
		t.Fatal(err)
	}
	shares := analytics.ProtocolShares(aggs)
	if len(shares) != 1 {
		t.Fatalf("months = %d", len(shares))
	}
	return shares[0].SharePct
}

func TestClaimEventA_YouTubeHTTPSMigration(t *testing.T) {
	before := monthShare(t, 2013, time.October)
	after := monthShare(t, 2015, time.April)
	if before[flowrec.WebHTTP] < 65 {
		t.Errorf("2013-10 HTTP share = %.1f, want clear majority", before[flowrec.WebHTTP])
	}
	if after[flowrec.WebHTTP] > 45 {
		t.Errorf("2015-04 HTTP share = %.1f, want the migration done", after[flowrec.WebHTTP])
	}
	if after[flowrec.WebTLS]+after[flowrec.WebSPDY] < 40 {
		t.Errorf("2015-04 encrypted share = %.1f, want >= 40",
			after[flowrec.WebTLS]+after[flowrec.WebSPDY])
	}
}

func TestClaimEventB_QUICAppears(t *testing.T) {
	if s := monthShare(t, 2014, time.September)[flowrec.WebQUIC]; s > 0 {
		t.Errorf("QUIC before its deployment: %.2f%%", s)
	}
	if s := monthShare(t, 2015, time.June)[flowrec.WebQUIC]; s < 2 {
		t.Errorf("mid-2015 QUIC share = %.2f%%, want growth", s)
	}
}

func TestClaimEventC_SPDYVisibility(t *testing.T) {
	// Before the June 2015 probe update SPDY hides inside TLS.
	if s := monthShare(t, 2015, time.April)[flowrec.WebSPDY]; s != 0 {
		t.Errorf("SPDY visible before the probe update: %.2f%%", s)
	}
	s := monthShare(t, 2015, time.September)[flowrec.WebSPDY]
	if s < 5 || s > 20 {
		t.Errorf("2015-09 SPDY share = %.2f%%, paper ~10%%", s)
	}
}

func TestClaimEventD_QUICOutage(t *testing.T) {
	nov := monthShare(t, 2015, time.November)[flowrec.WebQUIC]
	dec := monthShare(t, 2015, time.December)[flowrec.WebQUIC]
	feb := monthShare(t, 2016, time.February)[flowrec.WebQUIC]
	if nov < 5 {
		t.Errorf("2015-11 QUIC = %.2f%%, want ~8-10%%", nov)
	}
	// December's monthly mean keeps a sliver from Dec 1-4, before the
	// shutdown; the collapse must still be unmistakable.
	if dec > nov/2 {
		t.Errorf("2015-12 QUIC = %.2f%% vs 2015-11 %.2f%%: no visible outage", dec, nov)
	}
	// Mid-outage, QUIC is literally gone.
	aggs, err := claimsPipeline.Aggregate(context.Background(), []time.Time{date(2015, time.December, 20)})
	if err != nil {
		t.Fatal(err)
	}
	if s := analytics.ProtocolShares(aggs)[0].SharePct[flowrec.WebQUIC]; s != 0 {
		t.Errorf("2015-12-20 QUIC = %.2f%%, want exactly 0", s)
	}
	if feb < 5 {
		t.Errorf("2016-02 QUIC = %.2f%%, want the comeback", feb)
	}
}

func TestClaimEventE_SPDYToHTTP2(t *testing.T) {
	jan := monthShare(t, 2016, time.January)
	aug := monthShare(t, 2016, time.August)
	if jan[flowrec.WebSPDY] < 5 || jan[flowrec.WebHTTP2] > 1 {
		t.Errorf("2016-01: SPDY %.1f / H2 %.1f, want SPDY era", jan[flowrec.WebSPDY], jan[flowrec.WebHTTP2])
	}
	if aug[flowrec.WebSPDY] > 1 || aug[flowrec.WebHTTP2] < 3 {
		t.Errorf("2016-08: SPDY %.1f / H2 %.1f, want the handover done", aug[flowrec.WebSPDY], aug[flowrec.WebHTTP2])
	}
}

func TestClaimEventF_FBZero(t *testing.T) {
	oct := monthShare(t, 2016, time.October)[flowrec.WebFBZero]
	dec := monthShare(t, 2016, time.December)[flowrec.WebFBZero]
	if oct != 0 {
		t.Errorf("Zero before deployment: %.2f%%", oct)
	}
	if dec < 4 || dec > 14 {
		t.Errorf("2016-12 Zero share = %.2f%%, paper ~8%%", dec)
	}
}

func TestClaimEndState2017(t *testing.T) {
	end := monthShare(t, 2017, time.November)
	if end[flowrec.WebHTTP] < 15 || end[flowrec.WebHTTP] > 35 {
		t.Errorf("end-2017 HTTP = %.1f%%, paper ~25%%", end[flowrec.WebHTTP])
	}
	newProtos := end[flowrec.WebQUIC] + end[flowrec.WebFBZero]
	if newProtos < 14 || newProtos > 32 {
		t.Errorf("end-2017 QUIC+Zero = %.1f%%, paper 20-25%%", newProtos)
	}
}

func TestClaimTrafficDoubled(t *testing.T) {
	mean := func(year int) float64 {
		days := []time.Time{
			date(year, time.April, 5), date(year, time.April, 12),
			date(year, time.April, 19), date(year, time.April, 26),
		}
		aggs, err := claimsPipeline.Aggregate(context.Background(), days)
		if err != nil {
			t.Fatal(err)
		}
		ms := analytics.MonthlySeries(aggs)
		return ms[0].Mean[0][analytics.Down]
	}
	ratio := mean(2017) / mean(2014)
	if ratio < 1.4 || ratio > 3.0 {
		t.Errorf("2017/2014 download ratio = %.2f, paper ~2", ratio)
	}
}

func TestClaimSubMillisecondYouTube(t *testing.T) {
	aggs, err := claimsPipeline.Aggregate(context.Background(), []time.Time{
		date(2017, time.April, 5), date(2017, time.April, 12),
	})
	if err != nil {
		t.Fatal(err)
	}
	dist := analytics.RTTDist(aggs, "YouTube")
	if dist.N() == 0 {
		t.Fatal("no YouTube RTT samples")
	}
	if p := dist.P(1); p < 0.3 {
		t.Errorf("2017 YouTube P(RTT<=1ms) = %.2f, want the in-PoP cache", p)
	}
	// And Google search did not reach sub-ms (the paper's contrast).
	goog := analytics.RTTDist(aggs, "Google")
	if p := goog.P(1); p > 0.05 {
		t.Errorf("Google search sub-ms share = %.2f, want ~0", p)
	}
}

func TestClaimWhatsAppCentralised(t *testing.T) {
	aggs, err := claimsPipeline.Aggregate(context.Background(), []time.Time{date(2017, time.April, 5)})
	if err != nil {
		t.Fatal(err)
	}
	dist := analytics.RTTDist(aggs, "WhatsApp")
	if dist.N() == 0 {
		t.Fatal("no WhatsApp RTT samples")
	}
	if p := dist.P(50); p > 0.05 {
		t.Errorf("WhatsApp P(RTT<=50ms) = %.2f, want centralised ~100ms servers", p)
	}
}
