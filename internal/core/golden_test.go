package core

// Golden-figure regression corpus: every experiment (paper registry
// plus extensions) rendered at one small fixed simnet seed, compared
// byte-for-byte against testdata/golden/. Any change to classification,
// aggregation, sampling or formatting shows up as a readable text diff
// rather than a silent drift in the figures. Regenerate intentionally
// with `make golden` (go test -run TestGoldenFigures -update-golden).

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/simnet"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from current output")

// goldenConfig pins the corpus: one seed, a tiny population, sparse
// stride. Changing any of these invalidates every golden file, so
// they are deliberately separate from the other test configs.
func goldenConfig() Config {
	return Config{
		Seed: 424242, Scale: simnet.Scale{ADSL: 8, FTTH: 4},
		Stride: 240, Workers: 2,
	}
}

func TestGoldenFigures(t *testing.T) {
	p := New(goldenConfig())
	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range AllExperiments() {
		var buf bytes.Buffer
		if err := e.Run(context.Background(), p, &buf); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		path := filepath.Join(dir, e.ID+".txt")
		if *updateGolden {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden file (run `make golden`): %v", e.ID, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: output diverges from %s (regenerate with `make golden` if intentional)", e.ID, path)
		}
	}
}
