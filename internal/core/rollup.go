package core

// The rollup tier. Every long-span experiment so far folds ~1,800
// per-day aggregates on every query; with a rollup directory configured
// (Config.RollupDir, -rollup on the binaries) the pipeline persists
// week/month/year windows pre-folded through the analytics merge
// monoid and answers from the coarsest tier that fits:
//
//   - planTiers assigns the requested days to the coarsest calendar
//     windows lying entirely inside the requested span (year first,
//     then month, then week); days at the range edges fall back to the
//     day tier.
//   - Each window is one rollups/<grain>-<start>-v1.gob.gz file whose
//     manifest (Rollup.Requested) names the exact source-day grid; a
//     query with a different stride or span misses and rebuilds.
//   - A rewritten or quarantined day invalidates the rollups covering
//     it (DiskStorage.InvalidateRollups), so repaired days recompute
//     instead of serving stale merges.
//
// Exactness: the tier serves DayStat rows — per-source-day scalars —
// so figures that group by month or day (Figure 3, Figure 8, the
// active-share series) are byte-identical to the flat day fold; the
// rollup-equivalence test tier asserts it against the golden corpus.

import (
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/analytics"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/zpool"
)

// Rollup-tier observability: hits serve a query from one file, misses
// fall back to day aggregates and rebuild, invalidations are dropped
// files after a covered day changed.
var (
	mRollupHits    = metrics.GetCounter("rollup.hits")
	mRollupMisses  = metrics.GetCounter("rollup.misses")
	mRollupBuilds  = metrics.GetCounter("rollup.builds")
	mRollupInvalid = metrics.GetCounter("rollup.invalidations")
)

// rollupCacheVersion invalidates persisted rollups when the Rollup
// schema changes.
const rollupCacheVersion = 1

// cachedRollup is the on-disk envelope.
type cachedRollup struct {
	Version int
	R       *analytics.Rollup
}

// rollupCachePath names the file for one window, e.g.
// week-2016-05-09-v1.gob.gz.
func rollupCachePath(dir string, g analytics.Grain, start time.Time) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%s-v%d.gob.gz", g, start.Format("2006-01-02"), rollupCacheVersion))
}

// loadRollup reads one persisted window, nil when absent or unusable —
// the same never-trust-a-damaged-cache model as loadAgg.
func loadRollup(dir string, g analytics.Grain, start time.Time) *analytics.Rollup {
	f, err := os.Open(rollupCachePath(dir, g, start))
	if err != nil {
		return nil
	}
	defer f.Close()
	gz, err := zpool.GzipReader(f)
	if err != nil {
		return nil
	}
	defer zpool.PutGzipReader(gz)
	defer gz.Close()
	var env cachedRollup
	if err := gob.NewDecoder(gz).Decode(&env); err != nil {
		return nil
	}
	if env.Version != rollupCacheVersion || env.R == nil || env.R.Agg == nil ||
		env.R.Grain != g || !env.R.Start.Equal(start) {
		return nil
	}
	return env.R
}

// saveRollup writes one window atomically (tmp + rename, like saveAgg).
func saveRollup(dir string, r *analytics.Rollup) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: rollup cache: %w", err)
	}
	path := rollupCachePath(dir, r.Grain, r.Start)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: rollup cache: %w", err)
	}
	tmp := f.Name()
	gz := zpool.GzipWriter(f)
	err = gob.NewEncoder(gz).Encode(cachedRollup{Version: rollupCacheVersion, R: r})
	if cerr := gz.Close(); err == nil {
		err = cerr
	}
	zpool.PutGzipWriter(gz)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: rollup cache: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: rollup cache: %w", err)
	}
	return nil
}

// tierWindow is one unit of a tier plan: a rollup window with the
// requested days inside it, or (Grain "") a run of day-tier leftovers.
type tierWindow struct {
	Grain analytics.Grain
	Start time.Time
	Days  []time.Time
}

// planTiers assigns the requested days (ascending, deduplicated by the
// caller's construction) to the coarsest windows that lie entirely
// inside the requested span. Selection is per grain coarsest-first:
// a window qualifies when its full calendar extent sits within
// [days[0], days[last]] — edge windows the request only grazes stay on
// finer tiers and ultimately the day tier, which is what keeps a
// rollup from folding days the query never asked about.
func planTiers(days []time.Time) []tierWindow {
	if len(days) == 0 {
		return nil
	}
	first, last := days[0], days[len(days)-1]
	remaining := days
	var wins []tierWindow
	for _, g := range analytics.Grains() {
		var keep []time.Time
		for i := 0; i < len(remaining); {
			ws := analytics.WindowStart(g, remaining[i])
			j := i
			for j < len(remaining) && analytics.WindowStart(g, remaining[j]).Equal(ws) {
				j++
			}
			end := analytics.NextWindow(g, ws).AddDate(0, 0, -1)
			if !ws.Before(first) && !end.After(last) {
				wins = append(wins, tierWindow{Grain: g, Start: ws, Days: remaining[i:j]})
			} else {
				keep = append(keep, remaining[i:j]...)
			}
			i = j
		}
		remaining = keep
	}
	if len(remaining) > 0 {
		wins = append(wins, tierWindow{Start: remaining[0], Days: remaining})
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i].Start.Before(wins[j].Start) })
	return wins
}

// RollupsEnabled reports whether the rollup tier is configured.
func (p *Pipeline) RollupsEnabled() bool {
	return p.storage != nil && p.cfg.RollupDir != ""
}

// rollupFor serves one planned window: a persisted rollup when its
// manifest matches the request exactly and its aggregate is full-width
// (and sketch-bearing when the pipeline runs in sketch mode), a
// rebuild from day aggregates otherwise. Save failures are fatal in
// strict mode and tolerated in Degrade (the rollup still answers from
// memory; the next run rebuilds).
func (p *Pipeline) rollupFor(ctx context.Context, win tierWindow) (*analytics.Rollup, error) {
	r, err := p.storage.LoadRollup(win.Grain, win.Start)
	if err == nil && r != nil && r.Agg != nil && r.CoversExactly(win.Days) &&
		r.Agg.Cols.Covers(flowrec.ColumnSet(0)) &&
		(!p.cfg.Sketch || r.Agg.Sketches != nil) {
		mRollupHits.Inc()
		return r, nil
	}
	mRollupMisses.Inc()
	// Rebuild at full column width: a rollup serves every experiment,
	// so it must never inherit one experiment's pruned column contract.
	aggs, err := p.Aggregate(ctx, win.Days)
	if err != nil {
		return nil, err
	}
	r, err = analytics.BuildRollup(win.Grain, win.Start, win.Days, aggs)
	if err != nil {
		return nil, err
	}
	mRollupBuilds.Inc()
	if serr := p.retry.Do(ctx, uint64(win.Start.Unix()), func() error {
		return p.storage.SaveRollup(r)
	}); serr != nil && !p.cfg.Degrade {
		return nil, serr
	}
	return r, nil
}

// DayStats returns one scalar row per requested day that has data,
// ascending. With the rollup tier enabled, rows come from the coarsest
// covering rollups and only edge days touch per-day aggregates; without
// it, the rows project straight off the day aggregates (cols is the
// requesting experiment's column contract for that path — rollups
// themselves are always full-width).
func (p *Pipeline) DayStats(ctx context.Context, days []time.Time, cols flowrec.ColumnSet) ([]analytics.DayStat, error) {
	if !p.RollupsEnabled() {
		aggs, err := p.AggregateCols(ctx, days, cols)
		if err != nil {
			return nil, err
		}
		rows := make([]analytics.DayStat, 0, len(aggs))
		for _, a := range aggs {
			rows = append(rows, analytics.NewDayStat(a))
		}
		return rows, nil
	}
	var rows []analytics.DayStat
	for _, win := range planTiers(days) {
		if win.Grain == "" {
			aggs, err := p.AggregateCols(ctx, win.Days, cols)
			if err != nil {
				return nil, err
			}
			for _, a := range aggs {
				rows = append(rows, analytics.NewDayStat(a))
			}
			continue
		}
		r, err := p.rollupFor(ctx, win)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r.Stats...)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Day.Before(rows[j].Day) })
	return rows, nil
}

// BuildRollups pre-builds (or refreshes) every rollup window the given
// day list plans to, returning how many windows were built or already
// current — the warm-the-tier entry point behind edgequery/edgereport
// -rollup runs and the benchmarks.
func (p *Pipeline) BuildRollups(ctx context.Context, days []time.Time) (int, error) {
	if !p.RollupsEnabled() {
		return 0, fmt.Errorf("core: no rollup directory configured")
	}
	n := 0
	for _, win := range planTiers(days) {
		if win.Grain == "" {
			continue
		}
		if _, err := p.rollupFor(ctx, win); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Rollups returns the planned rollups for days, loading or building
// each — the query-path variant of BuildRollups for callers that want
// the coarse aggregates themselves (window totals, sketches).
func (p *Pipeline) Rollups(ctx context.Context, days []time.Time) ([]*analytics.Rollup, error) {
	if !p.RollupsEnabled() {
		return nil, fmt.Errorf("core: no rollup directory configured")
	}
	var out []*analytics.Rollup
	for _, win := range planTiers(days) {
		if win.Grain == "" {
			continue
		}
		r, err := p.rollupFor(ctx, win)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MonthlySeriesTier is Figure 3's fold served from the rollup tier
// when enabled — byte-identical to MonthlySeries over the flat day
// fold — and the plain exact path otherwise.
func (p *Pipeline) MonthlySeriesTier(ctx context.Context, days []time.Time, cols flowrec.ColumnSet) ([]analytics.MonthlyMean, error) {
	if !p.RollupsEnabled() {
		aggs, err := p.AggregateCols(ctx, days, cols)
		if err != nil {
			return nil, err
		}
		return analytics.MonthlySeries(aggs), nil
	}
	rows, err := p.DayStats(ctx, days, cols)
	if err != nil {
		return nil, err
	}
	return analytics.MonthlyFromStats(rows), nil
}

// ActiveSeriesTier is the section-3 active-share series through the
// rollup tier.
func (p *Pipeline) ActiveSeriesTier(ctx context.Context, days []time.Time, cols flowrec.ColumnSet) ([]analytics.ActivePoint, error) {
	if !p.RollupsEnabled() {
		aggs, err := p.AggregateCols(ctx, days, cols)
		if err != nil {
			return nil, err
		}
		return analytics.ActiveSeries(aggs), nil
	}
	rows, err := p.DayStats(ctx, days, cols)
	if err != nil {
		return nil, err
	}
	return analytics.ActiveFromStats(rows), nil
}

// ProtoSharesTier is Figure 8's monthly protocol mix through the
// rollup tier.
func (p *Pipeline) ProtoSharesTier(ctx context.Context, days []time.Time, cols flowrec.ColumnSet) ([]analytics.ProtoSharePoint, error) {
	if !p.RollupsEnabled() {
		aggs, err := p.AggregateCols(ctx, days, cols)
		if err != nil {
			return nil, err
		}
		return analytics.ProtocolShares(aggs), nil
	}
	rows, err := p.DayStats(ctx, days, cols)
	if err != nil {
		return nil, err
	}
	return analytics.ProtoSharesFromStats(rows), nil
}
