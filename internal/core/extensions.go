package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/report"
	"repro/internal/simnet"
)

// Extension experiments: analyses the paper mentions but does not
// plot. They run from the same aggregates as everything else.

// extensionExperiments returns the extra registry entries.
func extensionExperiments() []Experiment {
	return []Experiment{
		{
			ID:    "weekly",
			Cols:  analytics.ColsSubscribers,
			Title: "Section 4.3 extension: daily vs weekly service reach (Netflix gap)",
			Days: func(int) []time.Time {
				return RangeDays(date(2017, 10, 2), date(2017, 10, 29), 1)
			},
			Run: runWeekly,
		},
		{
			ID:    "quicver",
			Cols:  analytics.ColsQUIC,
			Title: "Per-protocol drill-down: gQUIC version mix by year",
			Days:  spanDays,
			Run:   runQUICVersions,
		},
		{
			ID:    "whatif",
			Title: "Counterfactuals: the 2016-12 protocol mix without event D / event F",
			Days:  func(int) []time.Time { return nil }, // builds its own worlds
			Run:   runWhatIf,
		},
	}
}

// runWhatIf contrasts the measured protocol mix of December 2016
// against two counterfactual worlds: one where Google never disabled
// QUIC (event D undone does not matter by then — it shows the same
// mix, a control) and one where Facebook never shipped Zero (event F
// undone: Zero's ~8%% returns to the TLS family). It quantifies, per
// episode, how much of the traffic mix one company's unilateral
// deployment moved — the section 5 argument in numbers.
func runWhatIf(ctx context.Context, p *Pipeline, w io.Writer) error {
	if err := report.Section(w, "Counterfactual protocol mixes, December 2016 (monthly mean, % of web bytes)"); err != nil {
		return err
	}
	days := RangeDays(date(2016, 12, 1), date(2016, 12, 28), 3)

	mix := func(ev simnet.Events) (map[flowrec.WebProto]float64, error) {
		world := simnet.NewWorldWithEvents(41, simnet.Scale{ADSL: 60, FTTH: 30}, ev)
		src := analytics.FuncSource(func(day time.Time, fn func(*flowrec.Record)) error {
			world.EmitDay(day, fn)
			return nil
		})
		aggs, err := p.runStage1(ctx, src, days, 4)
		if err != nil {
			return nil, err
		}
		shares := analytics.ProtocolShares(aggs)
		if len(shares) != 1 {
			return nil, fmt.Errorf("core: whatif: %d months", len(shares))
		}
		return shares[0].SharePct, nil
	}

	noZero := simnet.DefaultEvents()
	noZero.FBZero = false
	noOutage := simnet.DefaultEvents()
	noOutage.QUICOutage = false

	worlds := []struct {
		label string
		ev    simnet.Events
	}{
		{"as measured", simnet.DefaultEvents()},
		{"no FB-Zero (event F undone)", noZero},
		{"no QUIC outage (event D undone)", noOutage},
	}
	protos := analytics.WebProtos()
	headers := []string{"world"}
	for _, proto := range protos {
		headers = append(headers, proto.String())
	}
	var rows [][]string
	for _, c := range worlds {
		m, err := mix(c.ev)
		if err != nil {
			return err
		}
		row := []string{c.label}
		for _, proto := range protos {
			row = append(row, report.F(m[proto]))
		}
		rows = append(rows, row)
	}
	if err := report.Table(w, headers, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "\nreading: undoing event F folds Zero's share back into TLS/H2;\n"+
		"event D left no trace by December 2016 (the control row matches).")
	return err
}

func runWeekly(ctx context.Context, p *Pipeline, w io.Writer) error {
	aggs, err := p.AggregateCols(ctx, Lookup0("weekly").Days(p.Stride()), analytics.ColsSubscribers)
	if err != nil {
		return err
	}
	if err := report.Section(w, "Daily vs weekly reach, four weeks of October 2017"); err != nil {
		return err
	}
	var rows [][]string
	for _, svc := range []classify.Service{"Netflix", "YouTube", "WhatsApp", "SnapChat"} {
		pts := analytics.WeeklyPopularity(aggs, svc)
		var daily, weekly [2]float64
		for _, pt := range pts {
			for ti := 0; ti < 2; ti++ {
				daily[ti] += pt.DailyPct[ti]
				weekly[ti] += pt.WeeklyPct[ti]
			}
		}
		n := float64(len(pts))
		if n == 0 {
			continue
		}
		rows = append(rows, []string{
			string(svc),
			report.Pct(daily[0] / n), report.Pct(weekly[0] / n),
			report.Pct(daily[1] / n), report.Pct(weekly[1] / n),
		})
	}
	if err := report.Table(w, []string{"service", "ADSL daily", "ADSL weekly", "FTTH daily", "FTTH weekly"}, rows); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "\npaper (section 4.3): Netflix ~10% daily vs 18% (FTTH) / 12% (ADSL) weekly in 2017")
	return err
}

func runQUICVersions(ctx context.Context, p *Pipeline, w io.Writer) error {
	aggs, err := p.AggregateCols(ctx, spanDays(p.Stride()), analytics.ColsQUIC)
	if err != nil {
		return err
	}
	if err := report.Section(w, "gQUIC version mix per year (flows)"); err != nil {
		return err
	}
	byYear := make(map[int]map[string]uint64)
	for _, agg := range aggs {
		y := agg.Day.Year()
		m := byYear[y]
		if m == nil {
			m = make(map[string]uint64)
			byYear[y] = m
		}
		for v, n := range analytics.QUICVersionShare([]*analytics.DayAgg{agg}) {
			m[v] += n
		}
	}
	versions := map[string]bool{}
	var years []int
	for y, m := range byYear {
		years = append(years, y)
		for v := range m {
			versions[v] = true
		}
	}
	sort.Ints(years)
	var vlist []string
	for v := range versions {
		vlist = append(vlist, v)
	}
	sort.Strings(vlist)
	headers := append([]string{"year"}, vlist...)
	var rows [][]string
	for _, y := range years {
		row := []string{fmt.Sprint(y)}
		for _, v := range vlist {
			row = append(row, fmt.Sprint(byYear[y][v]))
		}
		rows = append(rows, row)
	}
	return report.Table(w, headers, rows)
}
