package core

import (
	"context"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/retry"
	"repro/internal/simnet"
)

// The chaos suite: every figure of the paper, run under each fault
// class the injector models. The acceptance bar is the paper's
// operational reality — five years of unattended pipeline runs — so a
// figure must either converge (transient faults, latency) or degrade
// to partial output with a non-empty per-day error report (permanent
// damage). It must never panic and never lose a day silently.

const chaosSeed = 7

var chaosScale = simnet.Scale{ADSL: 8, FTTH: 4}

// chaosDays is the union of every day any experiment consumes at the
// chaos stride — the store must cover them all so degradation in the
// tests comes from injected faults, not from gaps.
func chaosDays(stride int) []time.Time {
	seen := make(map[time.Time]bool)
	var out []time.Time
	for _, e := range AllExperiments() {
		for _, d := range e.Days(stride) {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// buildChaosStore materialises the chaos day set once into dir, in the
// given day-file format — the suite runs the full fault matrix against
// both, since v2's block structure fails differently under damage.
func buildChaosStore(t *testing.T, dir string, format flowrec.Format, days []time.Time) {
	t.Helper()
	store, err := flowrec.OpenStoreFormat(dir, format)
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Seed: chaosSeed, Scale: chaosScale, Workers: 8})
	n, err := p.GenerateStore(context.Background(), NewDiskStorage(store, ""), days)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("chaos store generated zero records")
	}
}

// copyTree clones a store directory so each fault class gets a private
// copy (quarantine moves files; classes must not see each other's
// damage).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// chaosPolicy retries fast: real backoff shapes are covered by the
// retry package's own tests.
func chaosPolicy() retry.Policy {
	return retry.Policy{Attempts: 4, Base: time.Millisecond, Max: 2 * time.Millisecond,
		Seed: 1, Sleep: func(time.Duration) {}}
}

func TestChaosSuite(t *testing.T) {
	for _, format := range []flowrec.Format{flowrec.FormatV1, flowrec.FormatV2, flowrec.FormatV3} {
		t.Run(format.String(), func(t *testing.T) {
			chaosSuite(t, format)
		})
	}
}

func chaosSuite(t *testing.T, format flowrec.Format) {
	const stride = 120
	days := chaosDays(stride)
	base := t.TempDir()
	buildChaosStore(t, base, format, days)

	mRetries := metrics.GetCounter("store.retries")
	mQuarantined := metrics.GetCounter("store.quarantined_days")
	mInjected := metrics.GetCounter("fault.injected")

	classes := []struct {
		name string
		spec string
		// wantErrs: the class leaves permanent damage, so the per-day
		// error report must be non-empty and some days degrade away.
		wantErrs bool
		// wantRetries: the class is transient, so backoff must engage
		// (store.retries moves) and then every day converges.
		wantRetries bool
		// wantQuarantine: the class corrupts data, so damaged days must
		// move to quarantine.
		wantQuarantine bool
	}{
		{"transient-io", "readday:p=0.05,transient", false, true, false},
		{"permanent-io", "readday:p=0.2", true, false, false},
		{"bitflip", "readday:p=0.2,bitflip", true, false, true},
		{"truncation", "readday:p=0.2,truncate", true, false, true},
		{"latency", "readday:p=0.5,latency=1ms", false, false, false},
	}
	for _, c := range classes {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			copyTree(t, base, dir)
			store, err := flowrec.OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := faultinject.Parse(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			p := New(Config{
				Seed: chaosSeed, Scale: chaosScale, Stride: stride, Workers: 4,
				Store: store, Degrade: true, Faults: plan, Retry: chaosPolicy(),
			})

			retries0, quar0, inj0 := mRetries.Load(), mQuarantined.Load(), mInjected.Load()
			for _, e := range AllExperiments() {
				if err := e.Run(context.Background(), p, io.Discard); err != nil {
					t.Fatalf("experiment %s under %s faults: %v", e.ID, c.name, err)
				}
			}
			errs := p.DayErrors()
			retries := mRetries.Load() - retries0
			quarantined := mQuarantined.Load() - quar0
			injected := mInjected.Load() - inj0

			if injected == 0 {
				t.Fatalf("fault plan %q never fired; the class tested nothing", c.spec)
			}
			if c.wantErrs && len(errs) == 0 {
				t.Errorf("%s: expected a non-empty per-day error report", c.name)
			}
			if !c.wantErrs && len(errs) > 0 {
				t.Errorf("%s: %d days failed, want full convergence; first: %v", c.name, len(errs), errs[0])
			}
			if c.wantRetries && retries == 0 {
				t.Errorf("%s: store.retries did not move; backoff never engaged", c.name)
			}
			if c.wantQuarantine && quarantined == 0 {
				t.Errorf("%s: corrupt days were not quarantined", c.name)
			}
			if !c.wantQuarantine && quarantined != 0 {
				t.Errorf("%s: %d days quarantined by a non-corrupting class", c.name, quarantined)
			}
			// Every reported failure names a concrete day with a cause.
			for _, de := range errs {
				if de.Err == nil || de.Day.IsZero() {
					t.Errorf("%s: malformed day error %+v", c.name, de)
				}
			}
		})
	}
}

// TestChaosQuarantineClearsOnRerun: after a corrupting run quarantines
// its damaged days, a fault-free rerun over the same store reads the
// quarantined days as outages — gaps, not repeated errors.
func TestChaosQuarantineClearsOnRerun(t *testing.T) {
	days := MonthDays(2016, time.April)
	dir := t.TempDir()
	// v2 here: quarantine-on-corruption must work for columnar days too
	// (the suite above covers v1).
	buildChaosStore(t, dir, flowrec.FormatV2, days)
	store, err := flowrec.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faultinject.Parse("readday:p=0.3,truncate")
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Seed: chaosSeed, Scale: chaosScale, Workers: 4,
		Store: store, Degrade: true, Faults: plan, Retry: chaosPolicy()})
	aggs, err := p.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	errs := p.DayErrors()
	if len(errs) == 0 {
		t.Fatal("corrupting run produced no day errors; cannot test the rerun")
	}
	if len(aggs)+len(errs) != len(days) {
		t.Fatalf("%d aggregates + %d errors != %d days: a day was lost silently",
			len(aggs), len(errs), len(days))
	}

	// Rerun without faults over the same (now partially quarantined)
	// store: the damaged days read as outages and everything succeeds.
	store2, err := flowrec.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2 := New(Config{Seed: chaosSeed, Scale: chaosScale, Workers: 4, Store: store2})
	aggs2, err := p2.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatalf("rerun over quarantined store: %v", err)
	}
	if len(aggs2) != len(aggs) {
		t.Errorf("rerun saw %d days, want the %d that survived quarantine", len(aggs2), len(aggs))
	}
	if len(p2.DayErrors()) != 0 {
		t.Errorf("rerun reported day errors: %v", p2.DayErrors())
	}
}
