package core

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// Pipeline-level spill tests: the bounded-memory external merge must
// be invisible end to end — byte-identical aggregates through the full
// Config surface, under fault injection and retries included — and the
// pooled cache codecs must survive concurrent loads (the -race suite
// runs this file too).

// TestSpillPipelineEquivalence: a pipeline with a tiny memory budget
// (every check spills) and a tiny fan-in (forcing multi-pass external
// merges) produces canonical aggregates byte-identical to the
// unbounded run, across the full store→aggregate path.
func TestSpillPipelineEquivalence(t *testing.T) {
	days := MonthDays(2016, time.April)[:6]
	dir := t.TempDir()
	buildChaosStore(t, dir, flowrec.FormatV3, days)
	store, err := flowrec.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	base := New(Config{Seed: chaosSeed, Scale: chaosScale, Workers: 4, Store: store})
	want, err := base.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}

	mSpills := metrics.GetCounter("analytics.spills")
	for _, shards := range []int{1, 3} {
		spills0 := mSpills.Load()
		p := New(Config{
			Seed: chaosSeed, Scale: chaosScale, Workers: 4, Store: store,
			ShardsPerDay: shards, MemBudget: 1, SpillDir: t.TempDir(), SpillFanIn: 2,
		})
		got, err := p.Aggregate(context.Background(), days)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if mSpills.Load() == spills0 {
			t.Fatalf("shards=%d: budget never forced a spill; the test exercised nothing", shards)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d days, want %d", shards, len(got), len(want))
		}
		for i := range want {
			bw, err := analytics.CanonicalBytes(want[i])
			if err != nil {
				t.Fatal(err)
			}
			bg, err := analytics.CanonicalBytes(got[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bw, bg) {
				t.Errorf("shards=%d: day %s diverges from the unbounded run",
					shards, want[i].Day.Format("2006-01-02"))
			}
		}
	}
}

// TestSpillUnderChaos runs the budgeted pipeline through the fault
// matrix: converging classes (transient, latency) must stay
// byte-identical to the clean unbounded run — a retried attempt must
// not leak spilled partials into the next — and corrupting classes
// must degrade exactly as they do without a budget.
func TestSpillUnderChaos(t *testing.T) {
	days := MonthDays(2016, time.April)[:6]
	base := t.TempDir()
	buildChaosStore(t, base, flowrec.FormatV3, days)
	cleanStore, err := flowrec.OpenStore(base)
	if err != nil {
		t.Fatal(err)
	}
	clean := New(Config{Seed: chaosSeed, Scale: chaosScale, Workers: 4, Store: cleanStore})
	want, err := clean.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}

	classes := []struct {
		name     string
		spec     string
		converge bool
	}{
		{"transient-io", "readday:p=0.2,transient", true},
		{"latency", "readday:p=0.5,latency=1ms", true},
		{"truncation", "readday:p=0.3,truncate", false},
	}
	for _, c := range classes {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			copyTree(t, base, dir)
			store, err := flowrec.OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := faultinject.Parse(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			p := New(Config{
				Seed: chaosSeed, Scale: chaosScale, Workers: 4, Store: store,
				Degrade: true, Faults: plan, Retry: chaosPolicy(),
				ShardsPerDay: 2, MemBudget: 1, SpillDir: t.TempDir(), SpillFanIn: 2,
			})
			got, err := p.Aggregate(context.Background(), days)
			if err != nil {
				t.Fatal(err)
			}
			if !c.converge {
				if len(p.DayErrors()) == 0 {
					t.Error("corrupting class produced no day errors under a budget")
				}
				return
			}
			if errs := p.DayErrors(); len(errs) > 0 {
				t.Fatalf("converging class degraded days: %v", errs[0])
			}
			if len(got) != len(want) {
				t.Fatalf("%d days, want %d", len(got), len(want))
			}
			for i := range want {
				bw, err := analytics.CanonicalBytes(want[i])
				if err != nil {
					t.Fatal(err)
				}
				bg, err := analytics.CanonicalBytes(got[i])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(bw, bg) {
					t.Errorf("day %s: budgeted run under %s faults diverges from clean run",
						want[i].Day.Format("2006-01-02"), c.name)
				}
			}
		})
	}
}

// TestConcurrentCacheLoads hammers the pooled gob+gzip cache codecs
// from many goroutines at once — agg, partial and rollup loads share
// the same zpool reader/writer pools, so any pooled-state aliasing
// shows up here under -race (the ci race target runs this test).
func TestConcurrentCacheLoads(t *testing.T) {
	dir := t.TempDir()
	day := time.Date(2016, 4, 12, 0, 0, 0, 0, time.UTC)
	cfg := Config{Seed: 5, Scale: simnet.Scale{ADSL: 10, FTTH: 5}, Workers: 2,
		AggCacheDir: dir, RollupDir: t.TempDir()}
	p := New(cfg)
	aggs, err := p.Aggregate(context.Background(), []time.Time{day})
	if err != nil {
		t.Fatal(err)
	}
	want := aggs[0].Flows
	stor := NewDiskStorage(nil, dir)
	parts := shardPartialsForDay(t, cfg, day)
	if err := stor.SavePartials(day, parts); err != nil {
		t.Fatal(err)
	}

	const loaders = 16
	var wg sync.WaitGroup
	for g := 0; g < loaders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				agg, err := stor.LoadAgg(day)
				if err != nil || agg == nil || agg.Flows != want {
					t.Errorf("concurrent LoadAgg: agg=%v err=%v", agg, err)
					return
				}
				got, err := stor.LoadPartials(day)
				if err != nil || len(got) == 0 {
					t.Errorf("concurrent LoadPartials: n=%d err=%v", len(got), err)
					return
				}
				// Writers share pools with readers; interleave saves.
				if i%5 == 0 {
					if err := stor.SaveAgg(agg); err != nil {
						t.Errorf("concurrent SaveAgg: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// shardPartialsForDay builds a day's shard partials the way a sharded
// run would, for seeding the partial cache.
func shardPartialsForDay(t *testing.T, cfg Config, day time.Time) []*analytics.Partial {
	t.Helper()
	world := simnet.NewWorld(cfg.Seed, cfg.Scale)
	aggs := []*analytics.Aggregator{
		analytics.NewAggregator(day, nil),
		analytics.NewAggregator(day, nil),
	}
	world.EmitDay(day, func(r *flowrec.Record) {
		aggs[r.Shard(len(aggs))].Add(r)
	})
	parts := make([]*analytics.Partial, len(aggs))
	for i, a := range aggs {
		parts[i] = a.Partial()
	}
	return parts
}
