package core

// Rollup-equivalence test tier (see TESTING.md): figures answered from
// the rollup tier must be byte-identical to the exact flat day fold in
// exact mode, rollup files must behave as a cache (hit on re-query,
// rebuild on manifest mismatch), and a changed day — rewrite or
// quarantine — must invalidate every covering window.

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

func TestPlanTiers(t *testing.T) {
	days := func(start string, n int) []time.Time {
		d, _ := time.Parse("2006-01-02", start)
		out := make([]time.Time, n)
		for i := range out {
			out[i] = d.AddDate(0, 0, i)
		}
		return out
	}

	// A full calendar year collapses to one year window.
	year := days("2016-01-01", 366)
	wins := planTiers(year)
	if len(wins) != 1 || wins[0].Grain != analytics.GrainYear || len(wins[0].Days) != 366 {
		t.Fatalf("full year planned as %d windows, first grain %q", len(wins), wins[0].Grain)
	}

	// A mid-month run: one interior week, day-tier edges.
	wins = planTiers(days("2016-06-03", 10)) // Fri Jun 3 … Sun Jun 12
	var weekDays, dayDays int
	for _, w := range wins {
		switch w.Grain {
		case analytics.GrainWeek:
			weekDays += len(w.Days)
			if !w.Start.Equal(time.Date(2016, 6, 6, 0, 0, 0, 0, time.UTC)) {
				t.Errorf("week window start %v, want 2016-06-06", w.Start)
			}
		case "":
			dayDays += len(w.Days)
		default:
			t.Errorf("unexpected grain %q for a 10-day run", w.Grain)
		}
	}
	if weekDays != 7 || dayDays != 3 {
		t.Errorf("mid-month run: %d week-tier + %d day-tier days, want 7+3", weekDays, dayDays)
	}

	// Every requested day lands in exactly one window, in order.
	req := days("2016-03-15", 70)
	wins = planTiers(req)
	seen := make(map[time.Time]int)
	for _, w := range wins {
		for _, d := range w.Days {
			seen[d]++
		}
	}
	if len(seen) != len(req) {
		t.Fatalf("plan covers %d distinct days, want %d", len(seen), len(req))
	}
	for d, n := range seen {
		if n != 1 {
			t.Errorf("day %v planned %d times", d, n)
		}
	}
	for i := 1; i < len(wins); i++ {
		if wins[i].Start.Before(wins[i-1].Start) {
			t.Error("windows not sorted by start")
		}
	}
	// The interior month (April) must have been promoted above weeks.
	foundMonth := false
	for _, w := range wins {
		if w.Grain == analytics.GrainMonth && w.Start.Month() == time.April {
			foundMonth = true
			if len(w.Days) != 30 {
				t.Errorf("April window has %d days, want 30", len(w.Days))
			}
		}
	}
	if !foundMonth {
		t.Error("interior April was not promoted to a month window")
	}

	if wins := planTiers(nil); wins != nil {
		t.Errorf("planTiers(nil) = %v", wins)
	}
}

// TestRollupTierGoldenIdentity renders the three tier-served
// experiments (active, fig3, fig8) with and without the rollup tier at
// the golden corpus config: the outputs must be byte-identical, and the
// second rollup-tier pipeline must answer from persisted windows.
func TestRollupTierGoldenIdentity(t *testing.T) {
	dir := t.TempDir()
	cfgR := goldenConfig()
	cfgR.RollupDir = dir

	mHits, mBuilds := metrics.GetCounter("rollup.hits"), metrics.GetCounter("rollup.builds")
	for _, id := range []string{"active", "fig3", "fig8"} {
		e := Lookup0(id)
		var exact, tiered, rerun bytes.Buffer
		if err := e.Run(context.Background(), New(goldenConfig()), &exact); err != nil {
			t.Fatalf("%s exact: %v", id, err)
		}
		builds0 := mBuilds.Load()
		if err := e.Run(context.Background(), New(cfgR), &tiered); err != nil {
			t.Fatalf("%s tiered: %v", id, err)
		}
		if !bytes.Equal(exact.Bytes(), tiered.Bytes()) {
			t.Errorf("%s: rollup-tier output diverges from the exact day fold", id)
		}
		if id == "fig3" && mBuilds.Load() == builds0 {
			t.Errorf("%s: tiered run built no rollups (tier never engaged)", id)
		}
		// A fresh pipeline over the same rollup dir must hit, not rebuild.
		hits0, builds1 := mHits.Load(), mBuilds.Load()
		if err := e.Run(context.Background(), New(cfgR), &rerun); err != nil {
			t.Fatalf("%s rerun: %v", id, err)
		}
		if !bytes.Equal(exact.Bytes(), rerun.Bytes()) {
			t.Errorf("%s: warm rollup-tier output diverges", id)
		}
		if mHits.Load() == hits0 {
			t.Errorf("%s: warm rerun never hit a persisted rollup", id)
		}
		if mBuilds.Load() != builds1 {
			t.Errorf("%s: warm rerun rebuilt rollups instead of hitting", id)
		}
	}
}

// rollupTestConfig is a small store-backed pipeline over one June 2016
// week plus day-tier edges.
func rollupTestDays() []time.Time {
	return RangeDays(
		time.Date(2016, 6, 3, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 6, 12, 0, 0, 0, 0, time.UTC), 1)
}

func buildRollupStore(t *testing.T, dir string) *flowrec.Store {
	t.Helper()
	store, err := flowrec.OpenStoreFormat(dir, flowrec.FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	gen := New(Config{Seed: 11, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 4})
	if _, err := gen.GenerateStore(context.Background(), NewDiskStorage(store, ""), rollupTestDays()); err != nil {
		t.Fatal(err)
	}
	return store
}

// TestRollupInvalidationOnWriteDay: rewriting a day through DiskStorage
// must drop its aggregate cache, shard partials and every covering
// rollup file, and the next query must rebuild and reflect the new
// bytes.
func TestRollupInvalidationOnWriteDay(t *testing.T) {
	storeDir, aggDir, rollDir := t.TempDir(), t.TempDir(), t.TempDir()
	store := buildRollupStore(t, storeDir)
	// A second full week in the store gives the invalidation a
	// control: its window does not cover the rewritten day, so its
	// rollup file must survive while the covering one drops.
	week2 := RangeDays(time.Date(2016, 6, 13, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 6, 19, 0, 0, 0, 0, time.UTC), 1)
	gen := New(Config{Seed: 11, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 4})
	if _, err := gen.GenerateStore(context.Background(), NewDiskStorage(store, ""), week2); err != nil {
		t.Fatal(err)
	}
	days := append(rollupTestDays(), week2...)
	mid := time.Date(2016, 6, 8, 0, 0, 0, 0, time.UTC) // inside the first week window

	cfg := Config{Seed: 11, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 4,
		Store: store, AggCacheDir: aggDir, RollupDir: rollDir}
	p := New(cfg)
	rows, err := p.DayStats(context.Background(), days, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(days) {
		t.Fatalf("DayStats returned %d rows, want %d", len(rows), len(days))
	}
	weekFile := rollupCachePath(rollDir, analytics.GrainWeek, analytics.WindowStart(analytics.GrainWeek, mid))
	if _, err := os.Stat(weekFile); err != nil {
		t.Fatalf("week rollup not persisted: %v", err)
	}
	otherWeekFile := rollupCachePath(rollDir, analytics.GrainWeek,
		analytics.WindowStart(analytics.GrainWeek, week2[0]))
	if _, err := os.Stat(otherWeekFile); err != nil {
		t.Fatalf("second week rollup not persisted: %v", err)
	}

	// Rewrite the covered day with a single tiny record.
	ds := NewDiskStorage(store, aggDir).WithRollupDir(rollDir)
	one := flowrec.Record{Start: mid.Add(time.Hour), Proto: flowrec.ProtoTCP,
		Tech: flowrec.TechADSL, SubID: 1, BytesDown: 1 << 20, BytesUp: 1 << 10, PktsUp: 1, PktsDown: 1}
	if _, err := ds.WriteDay(mid, func(write func(*flowrec.Record) error) error {
		return write(&one)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(weekFile); !os.IsNotExist(err) {
		t.Fatalf("covering week rollup survived the rewrite (err=%v)", err)
	}
	if _, err := os.Stat(aggCachePath(aggDir, mid)); !os.IsNotExist(err) {
		t.Fatalf("day aggregate cache survived the rewrite (err=%v)", err)
	}
	// Invalidation fires exactly for covering windows: the untouched
	// week's rollup is still on disk.
	if _, err := os.Stat(otherWeekFile); err != nil {
		t.Fatalf("non-covering week rollup was dropped by the rewrite: %v", err)
	}

	// A fresh pipeline must rebuild the window and see the new bytes.
	p2 := New(cfg)
	rows2, err := p2.DayStats(context.Background(), days, 0)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, r := range rows2 {
		if r.Day.Equal(mid) {
			found = true
			if r.Flows != 1 {
				t.Errorf("rewritten day shows %d flows in the rebuilt rollup, want 1", r.Flows)
			}
		}
	}
	if !found {
		t.Error("rewritten day missing from rebuilt rollup stats")
	}
	if _, err := os.Stat(weekFile); err != nil {
		t.Errorf("week rollup not rebuilt: %v", err)
	}
}

// TestRollupManifestMismatchRebuilds: a persisted window only answers
// the exact requested-day grid it was built from; a different grid
// rebuilds rather than serving the wrong day set.
func TestRollupManifestMismatchRebuilds(t *testing.T) {
	storeDir, rollDir := t.TempDir(), t.TempDir()
	store := buildRollupStore(t, storeDir)
	cfg := Config{Seed: 11, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 4,
		Store: store, RollupDir: rollDir}
	week := RangeDays(time.Date(2016, 6, 6, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 6, 12, 0, 0, 0, 0, time.UTC), 1)

	if _, err := New(cfg).DayStats(context.Background(), week, 0); err != nil {
		t.Fatal(err)
	}
	// Same window, stride-2 grid: 4 of the 7 days.
	strided := RangeDays(week[0], week[6], 2)
	mBuilds := metrics.GetCounter("rollup.builds")
	builds0 := mBuilds.Load()
	rows, err := New(cfg).DayStats(context.Background(), strided, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(strided) {
		t.Fatalf("strided query got %d rows, want %d", len(rows), len(strided))
	}
	for i, r := range rows {
		if !r.Day.Equal(strided[i]) {
			t.Errorf("row %d is %v, want %v (full-grid rollup leaked into a strided query)", i, r.Day, strided[i])
		}
	}
	if mBuilds.Load() == builds0 {
		t.Error("manifest mismatch did not trigger a rebuild")
	}
}

// TestRollupSketchModePipeline: with Config.Sketch the tier's windows
// carry merged sketches, and an exact-mode rollup on disk is not good
// enough for a sketch-mode query.
func TestRollupSketchModePipeline(t *testing.T) {
	storeDir, rollDir := t.TempDir(), t.TempDir()
	store := buildRollupStore(t, storeDir)
	week := RangeDays(time.Date(2016, 6, 6, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 6, 12, 0, 0, 0, 0, time.UTC), 1)
	base := Config{Seed: 11, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 4,
		Store: store, RollupDir: rollDir}

	// Exact-mode pass persists sketch-free windows.
	if _, err := New(base).Rollups(context.Background(), week); err != nil {
		t.Fatal(err)
	}

	sketchCfg := base
	sketchCfg.Sketch = true
	mBuilds := metrics.GetCounter("rollup.builds")
	builds0 := mBuilds.Load()
	rolls, err := New(sketchCfg).Rollups(context.Background(), week)
	if err != nil {
		t.Fatal(err)
	}
	if len(rolls) != 1 {
		t.Fatalf("got %d rollups, want 1 week window", len(rolls))
	}
	if mBuilds.Load() == builds0 {
		t.Error("sketch-mode query served an exact-mode rollup without rebuilding")
	}
	sk := rolls[0].Agg.Sketches
	if sk == nil {
		t.Fatal("sketch-mode rollup carries no sketches")
	}
	// The HLL must agree with the exact distinct-subscriber count within
	// its documented bound (tiny population: allow ±3 absolute as well).
	aggs, err := New(base).Aggregate(context.Background(), week)
	if err != nil {
		t.Fatal(err)
	}
	distinct := make(map[uint32]bool)
	for _, a := range aggs {
		for id := range a.Subs {
			distinct[id] = true
		}
	}
	est, n := sk.Clients.Estimate(), float64(len(distinct))
	if tol := 3*sk.Clients.RelErr()*n + 3; est < n-tol || est > n+tol {
		t.Errorf("window distinct clients: estimate %.1f, truth %.0f", est, n)
	}
}

// TestChaosRollupRefresh is the corrupt → degrade → repair → refresh
// chaos case: a corrupting run quarantines days and builds a degraded
// rollup; repairing the days (rewriting them) must invalidate the
// covering windows so the next query recomputes the clean answer
// instead of serving the degraded merge.
func TestChaosRollupRefresh(t *testing.T) {
	days := MonthDays(2016, time.April)
	storeDir, rollDir := t.TempDir(), t.TempDir()
	buildChaosStore(t, storeDir, flowrec.FormatV2, days)

	// The clean answer, from a flat exact fold (no rollups involved).
	cleanStore, err := flowrec.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	pClean := New(Config{Seed: chaosSeed, Scale: chaosScale, Workers: 4, Store: cleanStore})
	want, err := pClean.MonthlySeriesTier(context.Background(), days, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupting run through the rollup tier: days quarantine away and
	// the persisted month window is a degraded merge of the survivors.
	badStore, err := flowrec.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faultinject.Parse("readday:p=0.3,truncate")
	if err != nil {
		t.Fatal(err)
	}
	pBad := New(Config{Seed: chaosSeed, Scale: chaosScale, Workers: 4, Store: badStore,
		RollupDir: rollDir, Degrade: true, Faults: plan, Retry: chaosPolicy()})
	degraded, err := pBad.MonthlySeriesTier(context.Background(), days, 0)
	if err != nil {
		t.Fatalf("degraded tier query: %v", err)
	}
	errs := pBad.DayErrors()
	if len(errs) == 0 {
		t.Fatal("corrupting run produced no day errors; nothing to repair")
	}
	if reflect.DeepEqual(degraded, want) {
		t.Fatal("degraded rollup unexpectedly equals the clean answer; corruption never bit")
	}
	monthFile := rollupCachePath(rollDir, analytics.GrainMonth, days[0])
	if _, err := os.Stat(monthFile); err != nil {
		t.Fatalf("degraded month rollup not persisted: %v", err)
	}

	// Repair: regenerate the quarantined days from the (deterministic)
	// source into the same lake. WriteDay drops the stale rollup.
	repairStore, err := flowrec.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	gen := New(Config{Seed: chaosSeed, Scale: chaosScale, Workers: 4})
	var lost []time.Time
	for _, de := range errs {
		lost = append(lost, de.Day)
	}
	if _, err := gen.GenerateStore(context.Background(),
		NewDiskStorage(repairStore, "").WithRollupDir(rollDir), lost); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(monthFile); !os.IsNotExist(err) {
		t.Fatalf("repair did not invalidate the covering month rollup (err=%v)", err)
	}

	// Refresh: a clean pipeline over the repaired lake must rebuild the
	// window and reproduce the clean answer exactly.
	freshStore, err := flowrec.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	pFresh := New(Config{Seed: chaosSeed, Scale: chaosScale, Workers: 4, Store: freshStore,
		RollupDir: rollDir})
	got, err := pFresh.MonthlySeriesTier(context.Background(), days, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("refreshed rollup differs from the clean answer:\n got %+v\nwant %+v", got, want)
	}
	if len(pFresh.DayErrors()) != 0 {
		t.Errorf("refresh reported day errors: %v", pFresh.DayErrors())
	}
	if _, err := os.Stat(monthFile); err != nil {
		t.Errorf("refreshed month rollup not persisted: %v", err)
	}
}
