package core

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/flowrec"
	"repro/internal/retry"
	"repro/internal/simnet"
)

// flakySource fails its first call, then delegates to the world.
type flakySource struct {
	fails int
	world *simnet.World
}

func (f *flakySource) Records(day time.Time, fn func(*flowrec.Record)) error {
	if f.fails > 0 {
		f.fails--
		return errors.New("transient storage failure")
	}
	f.world.EmitDay(day, fn)
	return nil
}

func TestAggregateRetriesAfterError(t *testing.T) {
	p := New(Config{Seed: 99, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 1})
	src := &flakySource{fails: 1, world: p.World}
	day := time.Date(2016, 4, 9, 0, 0, 0, 0, time.UTC)

	// Drive Aggregate's internals through a source shim: swap the
	// pipeline's source by using the store-free path but injecting the
	// failure through analytics.Run directly.
	_, err := analytics.Run(src, []time.Time{day}, p.Cls, 1)
	if err == nil {
		t.Fatal("flaky source did not fail")
	}

	// The pipeline-level behaviour: an error must not poison the day
	// cache. Simulate by reserving through a failed call.
	failing := New(Config{Seed: 99, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 1,
		Store: brokenStore(t)})
	if _, err := failing.Aggregate(context.Background(), []time.Time{day}); err == nil {
		t.Fatal("broken store did not error")
	}
	// Retrying after the failure yields the day (from a fixed store —
	// here we just switch to the simulation source via a new pipeline
	// sharing the same cache is not possible, so assert the cache was
	// cleaned: a second failing call still reports the error rather
	// than silently returning zero aggregates).
	if _, err := failing.Aggregate(context.Background(), []time.Time{day}); err == nil {
		t.Fatal("second call silently swallowed the failure (poisoned cache)")
	}
}

// brokenStore returns a store whose day file exists but is corrupt, so
// reads fail with a real error (not ErrNoDay).
func brokenStore(t *testing.T) *flowrec.Store {
	t.Helper()
	dir := t.TempDir()
	s, err := flowrec.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2016, 4, 9, 0, 0, 0, 0, time.UTC)
	w, err := s.CreateDay(day)
	if err != nil {
		t.Fatal(err)
	}
	rec := flowrec.Record{Start: day.Add(time.Hour), Proto: flowrec.ProtoTCP}
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate the gzip mid-stream.
	path := dir + "/2016/04/flows-20160409.efl.gz"
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, data[:len(data)-4]); err != nil {
		t.Fatal(err)
	}
	return s
}

func readFile(path string) ([]byte, error)  { return os.ReadFile(path) }
func writeFile(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }

// cancelStorage is an in-memory Storage whose reads can be switched
// between failing (transiently) and succeeding — the shim that lets
// the tests drive Aggregate's error and cancellation paths exactly.
type cancelStorage struct {
	mu    sync.Mutex
	fail  bool
	reads int
	gen   uint64
}

func (f *cancelStorage) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

func (f *cancelStorage) ReadDay(day time.Time, fn func(*flowrec.Record) error) error {
	f.mu.Lock()
	fail := f.fail
	f.reads++
	f.mu.Unlock()
	if fail {
		return retry.MarkTransient(errors.New("injected transient read error"))
	}
	for i := 0; i < 50; i++ {
		r := flowrec.Record{
			Start: day.Add(time.Duration(i) * time.Minute),
			Proto: flowrec.ProtoTCP, Tech: flowrec.TechADSL,
			SubID: uint32(i % 5), BytesDown: 20 << 10, BytesUp: 10 << 10,
		}
		if err := fn(&r); err != nil {
			return err
		}
	}
	return nil
}

func (f *cancelStorage) ReadDayCols(day time.Time, sc flowrec.ColScan, fn func(*flowrec.Record) error) error {
	return f.ReadDay(day, func(r *flowrec.Record) error {
		if !sc.Pred.Match(r) {
			return nil
		}
		return fn(r)
	})
}

func (f *cancelStorage) WriteDay(time.Time, func(write func(*flowrec.Record) error) error) (uint64, error) {
	return 0, errors.New("not writable")
}
func (f *cancelStorage) HasDay(time.Time) bool                                { return true }
func (f *cancelStorage) Days() ([]time.Time, error)                           { return nil, nil }
func (f *cancelStorage) QuarantineDay(time.Time) error                        { return nil }
func (f *cancelStorage) LoadAgg(time.Time) (*analytics.DayAgg, error)         { return nil, nil }
func (f *cancelStorage) SaveAgg(*analytics.DayAgg) error                      { return nil }
func (f *cancelStorage) LoadPartials(time.Time) ([]*analytics.Partial, error) { return nil, nil }
func (f *cancelStorage) SavePartials(time.Time, []*analytics.Partial) error   { return nil }
func (f *cancelStorage) LoadRollup(analytics.Grain, time.Time) (*analytics.Rollup, error) {
	return nil, nil
}
func (f *cancelStorage) SaveRollup(*analytics.Rollup) error { return nil }
func (f *cancelStorage) InvalidateRollups(time.Time) error  { return nil }
func (f *cancelStorage) Generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}
func (f *cancelStorage) BumpGeneration() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gen++
	return f.gen
}

// TestAggregatePreCancelled: a context cancelled before the call must
// fail fast without reserving (and thus without poisoning) any day.
func TestAggregatePreCancelled(t *testing.T) {
	st := &cancelStorage{}
	p := New(Config{Seed: 1, Workers: 1, Storage: st})
	day := time.Date(2016, 4, 9, 0, 0, 0, 0, time.UTC)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Aggregate(ctx, []time.Time{day}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.reads != 0 {
		t.Errorf("cancelled call touched storage %d times", st.reads)
	}
	aggs, err := p.Aggregate(context.Background(), []time.Time{day})
	if err != nil || len(aggs) != 1 {
		t.Fatalf("after cancel: aggs=%d err=%v, want the day to compute", len(aggs), err)
	}
}

// TestAggregateCancelReleasesReservations: cancelling mid-retry must
// release the cancelled caller's day reservations, so a later call
// recomputes those days instead of inheriting nil aggregates. This is
// the regression test for the poisoned-cache failure mode.
func TestAggregateCancelReleasesReservations(t *testing.T) {
	st := &cancelStorage{fail: true}
	ctx, cancel := context.WithCancel(context.Background())
	p := New(Config{Seed: 1, Workers: 1, Storage: st,
		// The Sleep hook fires on the first backoff wait: cancel there,
		// deterministically mid-aggregation.
		Retry: retry.Policy{Attempts: 3, Base: time.Millisecond, Seed: 1,
			Sleep: func(time.Duration) { cancel() }}})
	days := []time.Time{
		time.Date(2016, 4, 9, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 4, 10, 0, 0, 0, 0, time.UTC),
	}

	if _, err := p.Aggregate(ctx, days); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The storage heals; a fresh call must recompute both days. A
	// leaked reservation would surface as a silent 0- or 1-day result.
	st.setFail(false)
	aggs, err := p.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatalf("post-cancel Aggregate: %v", err)
	}
	if len(aggs) != 2 {
		t.Fatalf("post-cancel Aggregate returned %d days, want 2 (reservations not released)", len(aggs))
	}
	for i, a := range aggs {
		if a.Flows == 0 {
			t.Errorf("day %d: empty aggregate after recompute", i)
		}
	}
}

// TestAggregateCancelDuringBackoff: a cancel arriving while the retry
// helper sleeps must abort promptly, not after the full backoff.
func TestAggregateCancelDuringBackoff(t *testing.T) {
	st := &cancelStorage{fail: true}
	ctx, cancel := context.WithCancel(context.Background())
	p := New(Config{Seed: 1, Workers: 1, Storage: st,
		Retry: retry.Policy{Attempts: 4, Base: time.Hour, Max: time.Hour, Seed: 1}})
	day := time.Date(2016, 4, 9, 0, 0, 0, 0, time.UTC)

	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err := p.Aggregate(ctx, []time.Time{day})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v to take effect; the backoff wait ignored ctx", elapsed)
	}
}
