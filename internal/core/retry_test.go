package core

import (
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/flowrec"
	"repro/internal/simnet"
)

// flakySource fails its first call, then delegates to the world.
type flakySource struct {
	fails int
	world *simnet.World
}

func (f *flakySource) Records(day time.Time, fn func(*flowrec.Record)) error {
	if f.fails > 0 {
		f.fails--
		return errors.New("transient storage failure")
	}
	f.world.EmitDay(day, fn)
	return nil
}

func TestAggregateRetriesAfterError(t *testing.T) {
	p := New(Config{Seed: 99, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 1})
	src := &flakySource{fails: 1, world: p.World}
	day := time.Date(2016, 4, 9, 0, 0, 0, 0, time.UTC)

	// Drive Aggregate's internals through a source shim: swap the
	// pipeline's source by using the store-free path but injecting the
	// failure through analytics.Run directly.
	_, err := analytics.Run(src, []time.Time{day}, p.Cls, 1)
	if err == nil {
		t.Fatal("flaky source did not fail")
	}

	// The pipeline-level behaviour: an error must not poison the day
	// cache. Simulate by reserving through a failed call.
	failing := New(Config{Seed: 99, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 1,
		Store: brokenStore(t)})
	if _, err := failing.Aggregate([]time.Time{day}); err == nil {
		t.Fatal("broken store did not error")
	}
	// Retrying after the failure yields the day (from a fixed store —
	// here we just switch to the simulation source via a new pipeline
	// sharing the same cache is not possible, so assert the cache was
	// cleaned: a second failing call still reports the error rather
	// than silently returning zero aggregates).
	if _, err := failing.Aggregate([]time.Time{day}); err == nil {
		t.Fatal("second call silently swallowed the failure (poisoned cache)")
	}
}

// brokenStore returns a store whose day file exists but is corrupt, so
// reads fail with a real error (not ErrNoDay).
func brokenStore(t *testing.T) *flowrec.Store {
	t.Helper()
	dir := t.TempDir()
	s, err := flowrec.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2016, 4, 9, 0, 0, 0, 0, time.UTC)
	w, err := s.CreateDay(day)
	if err != nil {
		t.Fatal(err)
	}
	rec := flowrec.Record{Start: day.Add(time.Hour), Proto: flowrec.ProtoTCP}
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate the gzip mid-stream.
	path := dir + "/2016/04/flows-20160409.efl.gz"
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, data[:len(data)-4]); err != nil {
		t.Fatal(err)
	}
	return s
}

func readFile(path string) ([]byte, error)  { return os.ReadFile(path) }
func writeFile(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }
