package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytics"
	"repro/internal/flowrec"
)

// Storage is the single surface the pipeline reads and writes through:
// the flow lake (day logs) and the per-day aggregate cache behind one
// interface, so a fault injector — or any alternative backend — can
// sit in front of everything at once. It is method-for-method
// identical to faultinject.Storage; a fault-wrapped Storage satisfies
// this interface structurally, which is what lets faultinject avoid
// importing core.
type Storage interface {
	// ReadDay streams one day's flow records; fn errors abort the
	// read and are returned. A missing day is flowrec.ErrNoDay.
	ReadDay(day time.Time, fn func(*flowrec.Record) error) error
	// ReadDayCols is ReadDay with a column projection and predicate
	// pushdown: a v2 store decodes only the requested columns and
	// skips blocks the predicate rules out; a v1 store delivers full
	// records filtered by the predicate. A zero ColScan is ReadDay.
	ReadDayCols(day time.Time, sc flowrec.ColScan, fn func(*flowrec.Record) error) error
	// WriteDay (re)creates one day's log: emit receives the write
	// callback and runs to completion before the log is sealed. The
	// record count is returned. Sealing is atomic: a failed WriteDay
	// (torn write, emit error, crash) leaves nothing at the day path,
	// so readers only ever see complete days and retries are safe.
	WriteDay(day time.Time, emit func(write func(*flowrec.Record) error) error) (uint64, error)
	// HasDay reports whether a day's log exists.
	HasDay(day time.Time) bool
	// Days lists stored days ascending, quarantined days excluded.
	Days() ([]time.Time, error)
	// QuarantineDay moves a damaged day's log out of the read path so
	// later reads see an outage instead of the same corruption.
	QuarantineDay(day time.Time) error
	// LoadAgg returns a cached per-day aggregate, (nil, nil) on a
	// cache miss (including "no cache configured").
	LoadAgg(day time.Time) (*analytics.DayAgg, error)
	// SaveAgg persists one day's aggregate; a no-op without a cache.
	SaveAgg(agg *analytics.DayAgg) error
	// LoadPartials returns a day's cached shard partials, (nil, nil)
	// on a miss. A sharded incremental re-run merges these instead of
	// re-reading the day's records.
	LoadPartials(day time.Time) ([]*analytics.Partial, error)
	// SavePartials persists a day's shard partials; a no-op without a
	// cache.
	SavePartials(day time.Time, parts []*analytics.Partial) error
	// LoadRollup returns the persisted rollup for one window, (nil,
	// nil) on a miss (including "no rollup tier configured"). Like the
	// aggregate cache, anything short of a healthy, version-matched
	// file reads as a miss.
	LoadRollup(g analytics.Grain, start time.Time) (*analytics.Rollup, error)
	// SaveRollup persists one window's rollup; a no-op without a
	// rollup tier.
	SaveRollup(r *analytics.Rollup) error
	// InvalidateRollups removes the persisted rollups whose windows
	// cover day — called when the day's data changes (rewrite,
	// quarantine), so no rollup keeps serving a stale merge.
	InvalidateRollups(day time.Time) error
	// Generation returns the lake generation: a monotonic counter that
	// advances on every mutation (WriteDay, quarantine, compaction,
	// live-ingest checkpoints). Anything derived from the lake — a
	// cached HTTP response, a day count — is valid exactly as long as
	// the generation it was computed under.
	Generation() uint64
	// BumpGeneration advances the generation and returns the new value.
	// Mutation paths inside Storage call it themselves; external
	// mutators (compaction, ingest checkpoints) call it after their
	// change lands.
	BumpGeneration() uint64
}

// DiskStorage is the production Storage: a flowrec day-partitioned
// store plus an optional on-disk aggregate cache directory. Either
// half may be absent — a simulation-fed pipeline with an agg cache
// has no store, edgegen's output store has no agg cache.
type DiskStorage struct {
	store     *flowrec.Store
	aggDir    string
	rollupDir string

	// genMu serializes generation bumps; gen holds the highest
	// generation this process has observed. With an agg cache dir the
	// counter is also persisted there (genPath), which is what lets a
	// live edged writer and an edgeserve reader sharing the directory
	// agree on lake freshness across processes.
	genMu   sync.Mutex
	gen     atomic.Uint64
	genPath string
}

// NewDiskStorage wires a DiskStorage; store may be nil (no flow lake)
// and aggDir may be empty (no aggregate cache).
func NewDiskStorage(store *flowrec.Store, aggDir string) *DiskStorage {
	d := &DiskStorage{store: store, aggDir: aggDir}
	if aggDir != "" {
		d.genPath = filepath.Join(aggDir, "generation")
	}
	return d
}

// WithRollupDir enables the rollup tier beside the day lake: persisted
// week/month/year rollup files live in dir. Returns the receiver for
// chaining off NewDiskStorage.
func (d *DiskStorage) WithRollupDir(dir string) *DiskStorage {
	d.rollupDir = dir
	return d
}

// ReadDay implements Storage.
func (d *DiskStorage) ReadDay(day time.Time, fn func(*flowrec.Record) error) error {
	if d.store == nil {
		return fmt.Errorf("%w: %s", flowrec.ErrNoDay, day.UTC().Format("2006-01-02"))
	}
	return d.store.ReadDay(day, fn)
}

// ReadDayCols implements Storage.
func (d *DiskStorage) ReadDayCols(day time.Time, sc flowrec.ColScan, fn func(*flowrec.Record) error) error {
	if d.store == nil {
		return fmt.Errorf("%w: %s", flowrec.ErrNoDay, day.UTC().Format("2006-01-02"))
	}
	return d.store.ReadDayCols(day, sc, fn)
}

// WriteDay implements Storage.
func (d *DiskStorage) WriteDay(day time.Time, emit func(write func(*flowrec.Record) error) error) (uint64, error) {
	if d.store == nil {
		return 0, fmt.Errorf("core: storage has no flow store to write %s", day.UTC().Format("2006-01-02"))
	}
	w, err := d.store.CreateDay(day)
	if err != nil {
		return 0, err
	}
	werr := emit(w.Write)
	n := w.Count()
	if werr != nil {
		// A failed emit (torn write, cancelled context) must not seal:
		// Abort discards the temp file, so no partial day is ever
		// published at the day path.
		w.Abort()
		return n, werr
	}
	werr = w.Close()
	if werr == nil {
		// The day's bytes changed: every cached derivation of the old
		// bytes — the aggregate, the shard partials, the covering
		// rollups — must go, or a repaired day keeps serving stale
		// merges. Absent files are fine; anything else surfaces.
		werr = d.invalidateDerived(day)
		d.BumpGeneration()
	}
	return n, werr
}

// invalidateDerived drops the day's cached aggregate and shard
// partials plus the rollups covering it.
func (d *DiskStorage) invalidateDerived(day time.Time) error {
	var firstErr error
	if d.aggDir != "" {
		for _, path := range []string{aggCachePath(d.aggDir, day), partialCachePath(d.aggDir, day)} {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := d.InvalidateRollups(day); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// HasDay implements Storage.
func (d *DiskStorage) HasDay(day time.Time) bool {
	return d.store != nil && d.store.HasDay(day)
}

// Days implements Storage.
func (d *DiskStorage) Days() ([]time.Time, error) {
	if d.store == nil {
		return nil, nil
	}
	return d.store.Days()
}

// QuarantineDay implements Storage.
func (d *DiskStorage) QuarantineDay(day time.Time) error {
	if d.store == nil {
		return nil
	}
	err := d.store.QuarantineDay(day)
	if err == nil {
		d.BumpGeneration()
	}
	return err
}

// LoadAgg implements Storage. Damaged or version-mismatched cache
// files read as misses, exactly like the pre-interface loadAgg.
func (d *DiskStorage) LoadAgg(day time.Time) (*analytics.DayAgg, error) {
	if d.aggDir == "" {
		return nil, nil
	}
	return loadAgg(d.aggDir, day), nil
}

// SaveAgg implements Storage.
func (d *DiskStorage) SaveAgg(agg *analytics.DayAgg) error {
	if d.aggDir == "" {
		return nil
	}
	return saveAgg(d.aggDir, agg)
}

// LoadPartials implements Storage. Like LoadAgg, anything short of a
// healthy, version-matched file reads as a miss.
func (d *DiskStorage) LoadPartials(day time.Time) ([]*analytics.Partial, error) {
	if d.aggDir == "" {
		return nil, nil
	}
	return loadPartials(d.aggDir, day), nil
}

// SavePartials implements Storage.
func (d *DiskStorage) SavePartials(day time.Time, parts []*analytics.Partial) error {
	if d.aggDir == "" {
		return nil
	}
	return savePartials(d.aggDir, day, parts)
}

// LoadRollup implements Storage: same miss-on-damage model as LoadAgg.
func (d *DiskStorage) LoadRollup(g analytics.Grain, start time.Time) (*analytics.Rollup, error) {
	if d.rollupDir == "" {
		return nil, nil
	}
	return loadRollup(d.rollupDir, g, start), nil
}

// SaveRollup implements Storage.
func (d *DiskStorage) SaveRollup(r *analytics.Rollup) error {
	if d.rollupDir == "" {
		return nil
	}
	return saveRollup(d.rollupDir, r)
}

// Generation implements Storage: the highest generation observed in
// memory or (when an agg cache dir is configured) persisted beside the
// cache by any process sharing the directory.
func (d *DiskStorage) Generation() uint64 {
	g := d.gen.Load()
	if fg := d.readGenFile(); fg > g {
		// Another process (a live edged beside this edgeserve) moved
		// the lake forward; adopt its generation so caches keyed on
		// ours go stale too. CompareAndSwap keeps the counter
		// monotonic against a concurrent local bump.
		for fg > g && !d.gen.CompareAndSwap(g, fg) {
			g = d.gen.Load()
		}
		return d.gen.Load()
	}
	return g
}

// BumpGeneration implements Storage.
func (d *DiskStorage) BumpGeneration() uint64 {
	d.genMu.Lock()
	defer d.genMu.Unlock()
	g := d.gen.Load()
	if fg := d.readGenFile(); fg > g {
		g = fg
	}
	g++
	d.gen.Store(g)
	d.writeGenFile(g)
	return g
}

// readGenFile returns the persisted generation, 0 when absent,
// unreadable, or unconfigured — a lost counter file only makes caches
// live one generation too long in a *new* process, never serves wrong
// bytes, so it is not worth failing a query over.
func (d *DiskStorage) readGenFile() uint64 {
	if d.genPath == "" {
		return 0
	}
	b, err := os.ReadFile(d.genPath)
	if err != nil {
		return 0
	}
	g, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0
	}
	return g
}

// writeGenFile persists g atomically (temp sibling + rename). Errors
// are swallowed for the same reason readGenFile's are.
func (d *DiskStorage) writeGenFile(g uint64) {
	if d.genPath == "" {
		return
	}
	if err := os.MkdirAll(filepath.Dir(d.genPath), 0o755); err != nil {
		return
	}
	tmp := d.genPath + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(g, 10)+"\n"), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, d.genPath)
}

// InvalidateRollups implements Storage: one covering window per grain.
func (d *DiskStorage) InvalidateRollups(day time.Time) error {
	if d.rollupDir == "" {
		return nil
	}
	var firstErr error
	for _, g := range analytics.Grains() {
		path := rollupCachePath(d.rollupDir, g, analytics.WindowStart(g, day))
		switch err := os.Remove(path); {
		case err == nil:
			mRollupInvalid.Inc()
		case !os.IsNotExist(err) && firstErr == nil:
			firstErr = err
		}
	}
	return firstErr
}
