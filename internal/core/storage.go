package core

import (
	"fmt"
	"time"

	"repro/internal/analytics"
	"repro/internal/flowrec"
)

// Storage is the single surface the pipeline reads and writes through:
// the flow lake (day logs) and the per-day aggregate cache behind one
// interface, so a fault injector — or any alternative backend — can
// sit in front of everything at once. It is method-for-method
// identical to faultinject.Storage; a fault-wrapped Storage satisfies
// this interface structurally, which is what lets faultinject avoid
// importing core.
type Storage interface {
	// ReadDay streams one day's flow records; fn errors abort the
	// read and are returned. A missing day is flowrec.ErrNoDay.
	ReadDay(day time.Time, fn func(*flowrec.Record) error) error
	// ReadDayCols is ReadDay with a column projection and predicate
	// pushdown: a v2 store decodes only the requested columns and
	// skips blocks the predicate rules out; a v1 store delivers full
	// records filtered by the predicate. A zero ColScan is ReadDay.
	ReadDayCols(day time.Time, sc flowrec.ColScan, fn func(*flowrec.Record) error) error
	// WriteDay (re)creates one day's log: emit receives the write
	// callback and runs to completion before the log is sealed. The
	// record count is returned. A failed WriteDay may leave a partial
	// file behind (a torn write); re-running it truncates and
	// rewrites, which is why retries are safe.
	WriteDay(day time.Time, emit func(write func(*flowrec.Record) error) error) (uint64, error)
	// HasDay reports whether a day's log exists.
	HasDay(day time.Time) bool
	// Days lists stored days ascending, quarantined days excluded.
	Days() ([]time.Time, error)
	// QuarantineDay moves a damaged day's log out of the read path so
	// later reads see an outage instead of the same corruption.
	QuarantineDay(day time.Time) error
	// LoadAgg returns a cached per-day aggregate, (nil, nil) on a
	// cache miss (including "no cache configured").
	LoadAgg(day time.Time) (*analytics.DayAgg, error)
	// SaveAgg persists one day's aggregate; a no-op without a cache.
	SaveAgg(agg *analytics.DayAgg) error
	// LoadPartials returns a day's cached shard partials, (nil, nil)
	// on a miss. A sharded incremental re-run merges these instead of
	// re-reading the day's records.
	LoadPartials(day time.Time) ([]*analytics.Partial, error)
	// SavePartials persists a day's shard partials; a no-op without a
	// cache.
	SavePartials(day time.Time, parts []*analytics.Partial) error
}

// DiskStorage is the production Storage: a flowrec day-partitioned
// store plus an optional on-disk aggregate cache directory. Either
// half may be absent — a simulation-fed pipeline with an agg cache
// has no store, edgegen's output store has no agg cache.
type DiskStorage struct {
	store  *flowrec.Store
	aggDir string
}

// NewDiskStorage wires a DiskStorage; store may be nil (no flow lake)
// and aggDir may be empty (no aggregate cache).
func NewDiskStorage(store *flowrec.Store, aggDir string) *DiskStorage {
	return &DiskStorage{store: store, aggDir: aggDir}
}

// ReadDay implements Storage.
func (d *DiskStorage) ReadDay(day time.Time, fn func(*flowrec.Record) error) error {
	if d.store == nil {
		return fmt.Errorf("%w: %s", flowrec.ErrNoDay, day.UTC().Format("2006-01-02"))
	}
	return d.store.ReadDay(day, fn)
}

// ReadDayCols implements Storage.
func (d *DiskStorage) ReadDayCols(day time.Time, sc flowrec.ColScan, fn func(*flowrec.Record) error) error {
	if d.store == nil {
		return fmt.Errorf("%w: %s", flowrec.ErrNoDay, day.UTC().Format("2006-01-02"))
	}
	return d.store.ReadDayCols(day, sc, fn)
}

// WriteDay implements Storage.
func (d *DiskStorage) WriteDay(day time.Time, emit func(write func(*flowrec.Record) error) error) (uint64, error) {
	if d.store == nil {
		return 0, fmt.Errorf("core: storage has no flow store to write %s", day.UTC().Format("2006-01-02"))
	}
	w, err := d.store.CreateDay(day)
	if err != nil {
		return 0, err
	}
	werr := emit(w.Write)
	n := w.Count()
	if cerr := w.Close(); werr == nil {
		werr = cerr
	}
	return n, werr
}

// HasDay implements Storage.
func (d *DiskStorage) HasDay(day time.Time) bool {
	return d.store != nil && d.store.HasDay(day)
}

// Days implements Storage.
func (d *DiskStorage) Days() ([]time.Time, error) {
	if d.store == nil {
		return nil, nil
	}
	return d.store.Days()
}

// QuarantineDay implements Storage.
func (d *DiskStorage) QuarantineDay(day time.Time) error {
	if d.store == nil {
		return nil
	}
	return d.store.QuarantineDay(day)
}

// LoadAgg implements Storage. Damaged or version-mismatched cache
// files read as misses, exactly like the pre-interface loadAgg.
func (d *DiskStorage) LoadAgg(day time.Time) (*analytics.DayAgg, error) {
	if d.aggDir == "" {
		return nil, nil
	}
	return loadAgg(d.aggDir, day), nil
}

// SaveAgg implements Storage.
func (d *DiskStorage) SaveAgg(agg *analytics.DayAgg) error {
	if d.aggDir == "" {
		return nil
	}
	return saveAgg(d.aggDir, agg)
}

// LoadPartials implements Storage. Like LoadAgg, anything short of a
// healthy, version-matched file reads as a miss.
func (d *DiskStorage) LoadPartials(day time.Time) ([]*analytics.Partial, error) {
	if d.aggDir == "" {
		return nil, nil
	}
	return loadPartials(d.aggDir, day), nil
}

// SavePartials implements Storage.
func (d *DiskStorage) SavePartials(day time.Time, parts []*analytics.Partial) error {
	if d.aggDir == "" {
		return nil
	}
	return savePartials(d.aggDir, day, parts)
}
