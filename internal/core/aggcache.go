package core

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/analytics"
	"repro/internal/zpool"
)

// Persistent stage-one cache. The paper's cluster keeps per-day
// aggregates materialised so that "advanced analytics and
// visualizations" (stage two) iterate without touching the raw flow
// records again (section 2.2). With a cache directory configured, a
// pipeline does the same: each day's aggregate is written as a
// gob-encoded, gzip-compressed file and reloaded on the next run.

// aggCacheVersion invalidates old cache files when the aggregate
// schema changes.
const aggCacheVersion = 3

// cachedAgg is the on-disk envelope.
type cachedAgg struct {
	Version int
	Agg     *analytics.DayAgg
}

// aggCachePath names the cache file for a day.
func aggCachePath(dir string, day time.Time) string {
	return filepath.Join(dir, fmt.Sprintf("agg-%s-v%d.gob.gz", day.Format("20060102"), aggCacheVersion))
}

// loadAgg reads a cached aggregate, returning nil when absent or
// unusable (a stale or damaged cache is recomputed, never trusted).
func loadAgg(dir string, day time.Time) *analytics.DayAgg {
	f, err := os.Open(aggCachePath(dir, day))
	if err != nil {
		return nil
	}
	defer f.Close()
	gz, err := zpool.GzipReader(f)
	if err != nil {
		return nil
	}
	defer zpool.PutGzipReader(gz)
	defer gz.Close()
	var env cachedAgg
	if err := gob.NewDecoder(gz).Decode(&env); err != nil {
		return nil
	}
	if env.Version != aggCacheVersion || env.Agg == nil || !env.Agg.Day.Equal(day) {
		return nil
	}
	return env.Agg
}

// Shard-partial cache files. A sharded run persists each day's
// unmerged shard partials instead of the final aggregate, so an
// incremental re-run — possibly with a different worker or shard
// count — merges the cached shards (cheap) instead of re-reading the
// day's records (expensive). The merge is the same monoid the live
// path uses, so replayed days stay byte-identical.

// partialCacheVersion invalidates old partial files when the partial
// schema changes, independently of the final-aggregate envelope.
const partialCacheVersion = 2

// cachedPartials is the on-disk envelope for one day's shards.
type cachedPartials struct {
	Version int
	Day     time.Time
	Parts   []*analytics.Partial
}

// partialCachePath names the shard-partial file for a day.
func partialCachePath(dir string, day time.Time) string {
	return filepath.Join(dir, fmt.Sprintf("parts-%s-v%d.gob.gz", day.Format("20060102"), partialCacheVersion))
}

// loadPartials reads a day's cached shard partials, nil when absent or
// unusable — same trust model as loadAgg.
func loadPartials(dir string, day time.Time) []*analytics.Partial {
	f, err := os.Open(partialCachePath(dir, day))
	if err != nil {
		return nil
	}
	defer f.Close()
	gz, err := zpool.GzipReader(f)
	if err != nil {
		return nil
	}
	defer zpool.PutGzipReader(gz)
	defer gz.Close()
	var env cachedPartials
	if err := gob.NewDecoder(gz).Decode(&env); err != nil {
		return nil
	}
	if env.Version != partialCacheVersion || len(env.Parts) == 0 || !env.Day.Equal(day) {
		return nil
	}
	return env.Parts
}

// savePartials writes a day's shard partials, atomically like saveAgg.
func savePartials(dir string, day time.Time, parts []*analytics.Partial) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: partial cache: %w", err)
	}
	path := partialCachePath(dir, day)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: partial cache: %w", err)
	}
	tmp := f.Name()
	gz := zpool.GzipWriter(f)
	err = gob.NewEncoder(gz).Encode(cachedPartials{Version: partialCacheVersion, Day: day, Parts: parts})
	if cerr := gz.Close(); err == nil {
		err = cerr
	}
	zpool.PutGzipWriter(gz)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: partial cache: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: partial cache: %w", err)
	}
	return nil
}

// saveAgg writes an aggregate to the cache. Failures are returned so
// callers can surface them; a full disk should not pass silently.
func saveAgg(dir string, agg *analytics.DayAgg) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: aggregate cache: %w", err)
	}
	path := aggCachePath(dir, agg.Day)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: aggregate cache: %w", err)
	}
	tmp := f.Name()
	gz := zpool.GzipWriter(f)
	err = gob.NewEncoder(gz).Encode(cachedAgg{Version: aggCacheVersion, Agg: agg})
	if cerr := gz.Close(); err == nil {
		err = cerr
	}
	zpool.PutGzipWriter(gz)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: aggregate cache: %w", err)
	}
	// Atomic publish: readers never see half a file.
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: aggregate cache: %w", err)
	}
	return nil
}
