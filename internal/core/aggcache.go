package core

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/analytics"
)

// Persistent stage-one cache. The paper's cluster keeps per-day
// aggregates materialised so that "advanced analytics and
// visualizations" (stage two) iterate without touching the raw flow
// records again (section 2.2). With a cache directory configured, a
// pipeline does the same: each day's aggregate is written as a
// gob-encoded, gzip-compressed file and reloaded on the next run.

// aggCacheVersion invalidates old cache files when the aggregate
// schema changes.
const aggCacheVersion = 2

// cachedAgg is the on-disk envelope.
type cachedAgg struct {
	Version int
	Agg     *analytics.DayAgg
}

// aggCachePath names the cache file for a day.
func aggCachePath(dir string, day time.Time) string {
	return filepath.Join(dir, fmt.Sprintf("agg-%s-v%d.gob.gz", day.Format("20060102"), aggCacheVersion))
}

// loadAgg reads a cached aggregate, returning nil when absent or
// unusable (a stale or damaged cache is recomputed, never trusted).
func loadAgg(dir string, day time.Time) *analytics.DayAgg {
	f, err := os.Open(aggCachePath(dir, day))
	if err != nil {
		return nil
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil
	}
	defer gz.Close()
	var env cachedAgg
	if err := gob.NewDecoder(gz).Decode(&env); err != nil {
		return nil
	}
	if env.Version != aggCacheVersion || env.Agg == nil || !env.Agg.Day.Equal(day) {
		return nil
	}
	return env.Agg
}

// saveAgg writes an aggregate to the cache. Failures are returned so
// callers can surface them; a full disk should not pass silently.
func saveAgg(dir string, agg *analytics.DayAgg) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: aggregate cache: %w", err)
	}
	path := aggCachePath(dir, agg.Day)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: aggregate cache: %w", err)
	}
	gz := gzip.NewWriter(f)
	err = gob.NewEncoder(gz).Encode(cachedAgg{Version: aggCacheVersion, Agg: agg})
	if cerr := gz.Close(); err == nil {
		err = cerr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: aggregate cache: %w", err)
	}
	// Atomic publish: readers never see half a file.
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: aggregate cache: %w", err)
	}
	return nil
}
