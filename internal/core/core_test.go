package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/flowrec"
	"repro/internal/simnet"
)

// testPipeline is small and fast.
func testPipeline() *Pipeline {
	return New(Config{Seed: 99, Scale: simnet.Scale{ADSL: 16, FTTH: 8}, Stride: 120, Workers: 4})
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	want := []string{"table1", "active", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}
	if len(exps) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("exps[%d] = %q, want %q", i, exps[i].ID, id)
		}
		if exps[i].Title == "" || exps[i].Run == nil || exps[i].Days == nil {
			t.Errorf("experiment %q incomplete", id)
		}
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup invented an experiment")
	}
}

func TestAggregateCaching(t *testing.T) {
	p := testPipeline()
	days := MonthDays(2016, time.April)[:3]
	a1, err := p.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != 3 || len(a2) != 3 {
		t.Fatalf("lengths %d, %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] { // pointer identity: served from cache
			t.Errorf("day %d not cached", i)
		}
	}
}

func TestRunAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry is slow")
	}
	p := testPipeline()
	for _, e := range Experiments() {
		var buf bytes.Buffer
		if err := e.Run(context.Background(), p, &buf); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
	}
}

func TestTable1Output(t *testing.T) {
	p := testPipeline()
	var buf bytes.Buffer
	if err := Lookup0("table1").Run(context.Background(), p, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"facebook.com", "Netflix", "fbstatic-a.akamaihd.net"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestGenerateStoreAndReadBack(t *testing.T) {
	p := testPipeline()
	store, err := flowrec.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	days := []time.Time{
		time.Date(2016, 4, 4, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 4, 5, 0, 0, 0, 0, time.UTC),
	}
	n, err := p.GenerateStore(context.Background(), NewDiskStorage(store, ""), days)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no records generated")
	}
	// A store-backed pipeline must reproduce the same aggregate as the
	// generating pipeline (bit-identical dataset on disk).
	ps := New(Config{Seed: 99, Scale: simnet.Scale{ADSL: 16, FTTH: 8}, Store: store, Workers: 2})
	fromStore, err := ps.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := p.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromStore) != len(direct) {
		t.Fatalf("aggs %d vs %d", len(fromStore), len(direct))
	}
	for i := range direct {
		if fromStore[i].Flows != direct[i].Flows ||
			fromStore[i].TotalDown != direct[i].TotalDown ||
			fromStore[i].TotalUp != direct[i].TotalUp {
			t.Errorf("day %d: store (%d,%d,%d) vs direct (%d,%d,%d)",
				i, fromStore[i].Flows, fromStore[i].TotalDown, fromStore[i].TotalUp,
				direct[i].Flows, direct[i].TotalDown, direct[i].TotalUp)
		}
	}
	// Store gaps behave like probe outages.
	missing := append(days, time.Date(2016, 4, 20, 0, 0, 0, 0, time.UTC))
	withGap, err := ps.Aggregate(context.Background(), missing)
	if err != nil {
		t.Fatal(err)
	}
	if len(withGap) != 2 {
		t.Errorf("gap day not skipped: %d aggs", len(withGap))
	}
}

func TestFig4PointsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("two full months of aggregation")
	}
	p := testPipeline()
	pts, err := Fig4Points(context.Background(), p, flowrec.TechADSL, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 30 {
		t.Fatalf("points = %d", len(pts))
	}
	// The growth ratio should be clearly above 1 on average.
	var sum float64
	for _, pt := range pts {
		sum += pt.Y
	}
	if mean := sum / float64(len(pts)); mean < 1.3 {
		t.Errorf("mean hourly ratio = %v, want growth", mean)
	}
}

func TestRangeDays(t *testing.T) {
	days := RangeDays(date(2014, 1, 1), date(2014, 1, 10), 3)
	if len(days) != 4 {
		t.Fatalf("days = %v", days)
	}
	if !days[3].Equal(date(2014, 1, 10)) {
		t.Errorf("last = %v", days[3])
	}
	if got := RangeDays(date(2014, 1, 1), date(2014, 1, 2), 0); len(got) != 2 {
		t.Errorf("stride 0 should clamp to 1: %v", got)
	}
}

func TestMonthDays(t *testing.T) {
	feb := MonthDays(2016, time.February)
	if len(feb) != 29 { // leap year
		t.Errorf("Feb 2016 has %d days", len(feb))
	}
	if MonthDays(2017, time.April)[29].Day() != 30 {
		t.Error("April end wrong")
	}
}

func TestSourceSelection(t *testing.T) {
	p := testPipeline()
	if _, ok := p.Source().(analytics.FuncSource); !ok {
		t.Errorf("storeless pipeline should use the world source")
	}
	store, err := flowrec.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ps := New(Config{Store: store})
	if _, ok := ps.Source().(analytics.StoreSource); !ok {
		t.Errorf("store pipeline should read the store")
	}
}
