package core

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/simnet"
)

func TestAggCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	days := []time.Time{
		time.Date(2016, 4, 4, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 4, 5, 0, 0, 0, 0, time.UTC),
	}
	mk := func() *Pipeline {
		return New(Config{Seed: 99, Scale: simnet.Scale{ADSL: 12, FTTH: 6}, Workers: 2, AggCacheDir: dir})
	}
	first, err := mk().Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("cache files = %d, want 2", len(entries))
	}

	// A second pipeline loads from disk; prove it by making the cache
	// the only possible source: poison the underlying store-less world
	// with a different seed. If the cache were ignored, the aggregates
	// would differ.
	poisoned := New(Config{Seed: 12345, Scale: simnet.Scale{ADSL: 12, FTTH: 6}, Workers: 2, AggCacheDir: dir})
	second, err := poisoned.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != len(first) {
		t.Fatalf("lengths differ: %d vs %d", len(second), len(first))
	}
	for i := range first {
		if first[i].Flows != second[i].Flows || first[i].TotalDown != second[i].TotalDown {
			t.Errorf("day %d recomputed instead of loaded: (%d,%d) vs (%d,%d)",
				i, second[i].Flows, second[i].TotalDown, first[i].Flows, first[i].TotalDown)
		}
		if !reflect.DeepEqual(first[i].ProtoBytes, second[i].ProtoBytes) {
			t.Errorf("day %d protocol bytes differ after cache round trip", i)
		}
	}
}

func TestAggCacheIgnoresDamage(t *testing.T) {
	dir := t.TempDir()
	day := time.Date(2016, 4, 6, 0, 0, 0, 0, time.UTC)
	p := New(Config{Seed: 99, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 2, AggCacheDir: dir})
	first, err := p.Aggregate(context.Background(), []time.Time{day})
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the cache file; a fresh pipeline must recompute, not fail.
	path := aggCachePath(dir, day)
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	p2 := New(Config{Seed: 99, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 2, AggCacheDir: dir})
	second, err := p2.Aggregate(context.Background(), []time.Time{day})
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Flows != first[0].Flows {
		t.Errorf("recomputed aggregate differs: %d vs %d", second[0].Flows, first[0].Flows)
	}
	// And the damaged file was replaced with a good one.
	if fi, err := os.Stat(path); err != nil || fi.Size() < 100 {
		t.Errorf("cache not rewritten after damage: %v", err)
	}
}

func TestAggCacheVersioning(t *testing.T) {
	dir := t.TempDir()
	day := time.Date(2016, 4, 7, 0, 0, 0, 0, time.UTC)
	// A file with the wrong version in its name is simply not found.
	stale := filepath.Join(dir, "agg-20160407-v1.gob.gz")
	if err := os.WriteFile(stale, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if agg := loadAgg(dir, day); agg != nil {
		t.Error("stale-version cache loaded")
	}
}
