package core

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseMemLimit parses a human-readable memory budget — "67108864",
// "64K", "512M", "2G", optionally with a trailing B or iB — into
// bytes, for the binaries' -memlimit flag. Units are binary (1K =
// 1024). Empty and "0" mean no limit.
func ParseMemLimit(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, nil
	}
	u := strings.ToUpper(t)
	u = strings.TrimSuffix(u, "IB")
	u = strings.TrimSuffix(u, "B")
	var mult int64 = 1
	switch {
	case strings.HasSuffix(u, "K"):
		mult, u = 1<<10, strings.TrimSuffix(u, "K")
	case strings.HasSuffix(u, "M"):
		mult, u = 1<<20, strings.TrimSuffix(u, "M")
	case strings.HasSuffix(u, "G"):
		mult, u = 1<<30, strings.TrimSuffix(u, "G")
	}
	n, err := strconv.ParseFloat(u, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("core: bad memory limit %q", s)
	}
	return int64(n * float64(mult)), nil
}
