package core

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/flowrec"
)

// TestAggregateConcurrentCallers hammers one pipeline's Aggregate
// from several goroutines over overlapping day windows — the -race
// guard for the reservation cache under contention. Every caller must
// see the same per-day aggregate pointers afterwards (days computed
// exactly once).
func TestAggregateConcurrentCallers(t *testing.T) {
	p := testPipeline()
	april := MonthDays(2016, time.April)
	windows := [][]time.Time{
		april[:4],
		april[2:6],
		april[:6],
		april[3:5],
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			days := windows[g%len(windows)]
			if _, err := p.Aggregate(context.Background(), days); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()

	// Repeat serially: everything is now cached, and a second pass
	// over the union returns identical pointers.
	a1, err := p.Aggregate(context.Background(), april[:6])
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p.Aggregate(context.Background(), april[:6])
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != 6 || len(a2) != 6 {
		t.Fatalf("lengths %d, %d, want 6", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Errorf("day %d recomputed after concurrent warm-up", i)
		}
	}
}

// TestAggregateConcurrentNoDrop regresses the reservation race: a
// caller that found a day already claimed by a concurrent Aggregate
// used to treat the in-flight day as an outage and silently drop it
// from its own result. Every concurrent call over a fully-available
// window must return every requested day.
func TestAggregateConcurrentNoDrop(t *testing.T) {
	april := MonthDays(2016, time.April)
	windows := [][]time.Time{
		april[:4],
		april[2:6], // overlaps the first window's tail
		april[:6],
		april[3:5],
	}
	// Several rounds on fresh pipelines: the race needs one caller to
	// catch another mid-computation, which a single run can miss.
	for round := 0; round < 3; round++ {
		p := testPipeline()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				days := windows[g%len(windows)]
				aggs, err := p.Aggregate(context.Background(), days)
				if err != nil {
					t.Error(err)
					return
				}
				if len(aggs) != len(days) {
					t.Errorf("concurrent Aggregate returned %d days, want %d (in-flight days dropped)", len(aggs), len(days))
				}
			}(g)
		}
		wg.Wait()
	}
}

// TestGenerateStoreBoundedGoroutines regresses the goroutine-per-day
// spawn: generating many days must not grow the goroutine count
// beyond the configured worker pool (plus test overhead).
func TestGenerateStoreBoundedGoroutines(t *testing.T) {
	p := testPipeline() // Workers: 4
	store, err := flowrec.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	days := MonthDays(2016, time.April) // 30 days >> 4 workers
	before := runtime.NumGoroutine()
	quit := make(chan struct{})
	peakCh := make(chan int, 1)
	go func() {
		peak := 0
		for {
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
			select {
			case <-quit:
				peakCh <- peak
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()
	n, err := p.GenerateStore(context.Background(), NewDiskStorage(store, ""), days)
	close(quit)
	peak := <-peakCh
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no records generated")
	}
	// Allow slack for runtime/test goroutines; the old implementation
	// peaked at before+30.
	if peak > before+4+6 {
		t.Errorf("goroutines peaked at %d (baseline %d): pool not bounded", peak, before)
	}
}
