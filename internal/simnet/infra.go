package simnet

import (
	"time"

	"repro/internal/asn"
	"repro/internal/stats"
	"repro/internal/wire"
)

// infraModel describes where each service's servers live over time:
// which address pool, which AS, at what distance (RTT tier), and under
// which domain names. It encodes the infrastructure stories of
// Figures 10 and 11:
//
//   - Facebook migrates from shared Akamai CDN addresses to its own
//     CDN (AS32934) through 2014-2015, completing by end 2015, and the
//     per-day footprint shrinks (Fig 11a/d/g);
//   - Instagram rides TELIANET/GTT + Akamai until Facebook absorbs it
//     by end 2015 (Fig 11b/e/h);
//   - YouTube is always dedicated Google space, growing, and from late
//     2015 most traffic comes from caches inside the ISP — the
//     sub-millisecond Internet (Fig 10b, 11c/f/i);
//   - the 3 ms ISP-edge cache tier takes over Facebook/Instagram
//     delivery by 2017 (Fig 10a).
type infraModel struct {
	seed uint64
}

func newInfraModel(seed uint64) *infraModel { return &infraModel{seed: seed} }

// RTT tiers of section 6.1: the probe-to-server floor of each class of
// deployment. Per-flow minimum RTT lands near one of these.
var (
	rttInPoP     = 600 * time.Microsecond // cache at the first aggregation point
	rttEdge      = 3 * time.Millisecond   // CDN node at the ISP edge
	rttNational  = 10 * time.Millisecond  // national data center
	rttEuropean1 = 20 * time.Millisecond  // nearby European PoP
	rttEuropean2 = 30 * time.Millisecond  // farther European PoP
	rttIntercont = 110 * time.Millisecond // transatlantic
)

// pool is a contiguous address block owned by one AS. Distinct
// services may draw from the same pool: those addresses show up as
// "shared" in Figure 11's sense.
type pool struct {
	name string
	base wire.Addr
	bits uint8 // CIDR size of the block
	as   asn.ASNum
}

// addr picks address k of the pool (k < capacity).
func (p pool) addr(k int) wire.Addr {
	cap := 1 << (32 - uint(p.bits))
	return wire.AddrFromUint32(p.base.Uint32() + uint32(k%cap))
}

// prefix returns the pool's CIDR prefix for the RIBs.
func (p pool) prefix() asn.Prefix { return asn.Prefix{Addr: p.base, Bits: p.bits} }

// The address plan. Blocks use realistic owners so reports read like
// the paper's.
var (
	poolAkamai    = pool{name: "akamai", base: wire.AddrFrom(23, 62, 0, 0), bits: 16, as: asn.ASAkamai}
	poolFacebook  = pool{name: "facebook", base: wire.AddrFrom(31, 13, 64, 0), bits: 18, as: asn.ASFacebook}
	poolInstagram = pool{name: "instagram", base: wire.AddrFrom(31, 13, 128, 0), bits: 18, as: asn.ASFacebook}
	poolTeliaNet  = pool{name: "telianet", base: wire.AddrFrom(62, 115, 0, 0), bits: 16, as: asn.ASTeliaNet}
	poolGTT       = pool{name: "gtt", base: wire.AddrFrom(77, 67, 0, 0), bits: 16, as: asn.ASGTT}
	poolGoogle    = pool{name: "google", base: wire.AddrFrom(173, 194, 0, 0), bits: 15, as: asn.ASGoogle}
	poolGoogleWeb = pool{name: "google-web", base: wire.AddrFrom(216, 58, 192, 0), bits: 19, as: asn.ASGoogle}
	poolISPCache  = pool{name: "isp-cache", base: wire.AddrFrom(151, 99, 0, 0), bits: 16, as: asn.ASISP}
	poolNetflix   = pool{name: "netflix", base: wire.AddrFrom(198, 38, 96, 0), bits: 17, as: 2906}
	poolWhatsApp  = pool{name: "whatsapp", base: wire.AddrFrom(158, 85, 0, 0), bits: 16, as: 36351}
	poolGeneric   = pool{name: "generic", base: wire.AddrFrom(104, 16, 0, 0), bits: 14, as: 13335}
	poolMisc      = pool{name: "misc", base: wire.AddrFrom(185, 60, 0, 0), bits: 16, as: 8560}
)

// allPools feeds the RIB builder.
var allPools = []pool{
	poolAkamai, poolFacebook, poolInstagram, poolTeliaNet, poolGTT,
	poolGoogle, poolGoogleWeb, poolISPCache, poolNetflix, poolWhatsApp,
	poolGeneric, poolMisc,
}

// ribs builds one RIB snapshot per month of the span. The plan is
// static (pools don't move between ASes; the *services* move between
// pools), which is exactly how the real world worked: Facebook's
// migration shows up in Fig 11d because flows change address, not
// because addresses change AS.
func (m *infraModel) ribs() *asn.RIBSet {
	var set asn.RIBSet
	table := new(asn.Table)
	for _, p := range allPools {
		table.Insert(p.prefix(), p.as)
	}
	for month := asn.MonthStart(SpanStart); !month.After(SpanEnd); month = month.AddDate(0, 1, 0) {
		set.Add(month, table)
	}
	return &set
}

// serverChoice is one server pick for a flow.
type serverChoice struct {
	addr   wire.Addr
	rttMin time.Duration
}

// tierChoice couples a pool with an RTT tier and a weight.
type tierChoice struct {
	pool   pool
	rtt    time.Duration
	weight float64
	// footprint is the number of distinct addresses of the pool in
	// rotation on a given day; it shapes Fig 11's per-day IP counts.
	footprint int
}

// pickServer draws a server from a weighted tier set. The address is
// drawn from a day-salted window of the pool so the set of addresses
// seen per day has the intended size and changes composition slowly,
// the way CDN rotations do.
func pickServer(day time.Time, r *stats.Rand, tiers []tierChoice) serverChoice {
	var total float64
	for _, t := range tiers {
		total += t.weight
	}
	if total <= 0 {
		// Degenerate schedule; fall back to the first tier.
		t := tiers[0]
		return serverChoice{addr: t.pool.addr(r.Intn(max(1, t.footprint))), rttMin: t.rtt}
	}
	u := r.Float64() * total
	var cum float64
	for _, t := range tiers {
		cum += t.weight
		if u < cum {
			n := max(1, t.footprint)
			// Rotate the visible window of the pool week by week.
			week := dayIndex(day) / 7
			off := int(stats.Mix64(uint64(week), uint64(t.pool.base.Uint32())) % uint64(1<<(32-uint(t.pool.bits))))
			return serverChoice{addr: t.pool.addr(off + r.Intn(n)), rttMin: t.rtt}
		}
	}
	t := tiers[len(tiers)-1]
	return serverChoice{addr: t.pool.addr(r.Intn(max(1, t.footprint))), rttMin: t.rtt}
}

// ramp linearly interpolates from v0 to v1 as d runs from t0 to t1,
// clamping outside. The workhorse of every migration curve.
func ramp(d time.Time, t0, t1 time.Time, v0, v1 float64) float64 {
	if !d.After(t0) {
		return v0
	}
	if !d.Before(t1) {
		return v1
	}
	f := float64(d.Sub(t0)) / float64(t1.Sub(t0))
	return v0 + (v1-v0)*f
}

// date is shorthand for a UTC midnight.
func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// --- Per-service infrastructure schedules -------------------------------

// facebookTiers: Fig 11a/d — Akamai-shared addresses fade out through
// 2015, the dedicated CDN takes over, and by 2017 80% of flows hit the
// 3 ms edge tier (Fig 10a). The daily footprint shrinks 3800→<1000
// (scaled ×0.1 here).
func facebookTiers(d time.Time) []tierChoice {
	akamaiShare := ramp(d, date(2013, 7, 1), date(2015, 12, 1), 0.60, 0)
	// Of the dedicated share, the close-edge fraction grows.
	edgeFrac := ramp(d, date(2014, 1, 1), date(2017, 4, 1), 0.15, 0.85)
	own := 1 - akamaiShare
	fbFoot := int(ramp(d, date(2013, 7, 1), date(2016, 7, 1), 180, 90))
	akFoot := int(ramp(d, date(2013, 7, 1), date(2015, 12, 1), 200, 1))
	return []tierChoice{
		{pool: poolAkamai, rtt: rttEuropean1, weight: akamaiShare * 0.85, footprint: akFoot},
		{pool: poolAkamai, rtt: rttIntercont, weight: akamaiShare * 0.15, footprint: akFoot / 2},
		{pool: poolFacebook, rtt: rttEdge, weight: own * edgeFrac, footprint: fbFoot / 2},
		{pool: poolFacebook, rtt: rttNational, weight: own * (1 - edgeFrac) * 0.5, footprint: fbFoot / 4},
		{pool: poolFacebook, rtt: rttEuropean2, weight: own * (1 - edgeFrac) * 0.35, footprint: fbFoot / 4},
		{pool: poolFacebook, rtt: rttIntercont, weight: own * (1 - edgeFrac) * 0.15, footprint: fbFoot / 8},
	}
}

// instagramTiers: Fig 11b/e — TELIANET/GTT/Akamai until the Facebook
// integration completes end-2015; afterwards a small dedicated pool
// (300 addresses full scale, 30 here) at the edge.
func instagramTiers(d time.Time) []tierChoice {
	legacy := ramp(d, date(2014, 6, 1), date(2015, 12, 1), 1, 0)
	edgeFrac := ramp(d, date(2014, 6, 1), date(2017, 4, 1), 0.10, 0.85)
	own := 1 - legacy
	igFoot := int(ramp(d, date(2014, 6, 1), date(2016, 7, 1), 60, 30))
	return []tierChoice{
		{pool: poolTeliaNet, rtt: rttEdge, weight: legacy * 0.10, footprint: 20},
		{pool: poolTeliaNet, rtt: rttNational, weight: legacy * 0.30, footprint: 80},
		{pool: poolGTT, rtt: rttEuropean1, weight: legacy * 0.27, footprint: 60},
		{pool: poolAkamai, rtt: rttEuropean2, weight: legacy * 0.25, footprint: 100},
		{pool: poolTeliaNet, rtt: rttIntercont, weight: legacy * 0.08, footprint: 40},
		{pool: poolInstagram, rtt: rttEdge, weight: own * edgeFrac, footprint: igFoot},
		{pool: poolInstagram, rtt: rttNational, weight: own * (1 - edgeFrac), footprint: igFoot / 2},
	}
}

// youtubeTiers: Fig 11c/f and Fig 10b — dedicated Google space growing
// throughout; from late 2015 ISP-hosted caches (AS of the ISP itself)
// take most of the traffic at sub-millisecond RTT.
func youtubeTiers(d time.Time) []tierChoice {
	ispShare := ramp(d, date(2015, 9, 1), date(2016, 9, 1), 0, 0.60)
	googFoot := int(ramp(d, date(2013, 7, 1), date(2017, 12, 1), 800, 4000))
	ispFoot := int(ramp(d, date(2015, 9, 1), date(2017, 12, 1), 1, 120))
	goog := 1 - ispShare
	return []tierChoice{
		{pool: poolISPCache, rtt: rttInPoP, weight: ispShare, footprint: ispFoot},
		{pool: poolGoogle, rtt: rttEdge, weight: goog * 0.80, footprint: googFoot},
		{pool: poolGoogle, rtt: rttNational, weight: goog * 0.15, footprint: googFoot / 4},
		{pool: poolGoogle, rtt: rttEuropean1, weight: goog * 0.05, footprint: googFoot / 8},
	}
}

// googleTiers: Fig 10b — search frontends get closer over time but
// never reach the in-PoP tier ("they have to handle less traffic, and
// perform more complicated processing than YouTube video caches").
func googleTiers(d time.Time) []tierChoice {
	edge := ramp(d, date(2013, 7, 1), date(2017, 6, 1), 0.40, 0.75)
	return []tierChoice{
		{pool: poolGoogleWeb, rtt: rttEdge, weight: edge, footprint: 120},
		{pool: poolGoogleWeb, rtt: rttNational, weight: (1 - edge) * 0.6, footprint: 60},
		{pool: poolGoogleWeb, rtt: rttEuropean1, weight: (1 - edge) * 0.4, footprint: 40},
	}
}

// netflixTiers: OpenConnect appliances land at the edge as the service
// ramps up in Italy.
func netflixTiers(d time.Time) []tierChoice {
	edge := ramp(d, date(2015, 10, 22), date(2017, 1, 1), 0.3, 0.8)
	return []tierChoice{
		{pool: poolNetflix, rtt: rttEdge, weight: edge, footprint: 60},
		{pool: poolNetflix, rtt: rttEuropean1, weight: 1 - edge, footprint: 40},
	}
}

// whatsappTiers: the paper's noted exception — still centralised,
// ~100 ms, through 2017.
func whatsappTiers(time.Time) []tierChoice {
	return []tierChoice{
		{pool: poolWhatsApp, rtt: rttIntercont, weight: 1, footprint: 60},
	}
}

// genericTiers serves background web and every service without a
// bespoke schedule. A slice of it sits on shared Akamai addresses,
// which is what makes those addresses "shared" in Fig 11's sense.
func genericTiers(d time.Time) []tierChoice {
	return []tierChoice{
		{pool: poolAkamai, rtt: rttEuropean1, weight: 0.25, footprint: 250},
		{pool: poolGeneric, rtt: rttEuropean2, weight: 0.35, footprint: 800},
		// A slice of generic hosting rides the same transit providers
		// Instagram used pre-migration, so those addresses read as
		// "shared" in Fig 11b, as in the paper.
		{pool: poolTeliaNet, rtt: rttNational, weight: 0.06, footprint: 120},
		{pool: poolGTT, rtt: rttEuropean1, weight: 0.04, footprint: 80},
		{pool: poolMisc, rtt: rttNational, weight: 0.15, footprint: 300},
		{pool: poolMisc, rtt: rttIntercont, weight: 0.15, footprint: 200},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
