package simnet

import (
	"time"

	"repro/internal/flowrec"
)

// FaultPlan is the slice of the fault injector the world consults at
// emission time. It is declared here (rather than importing
// faultinject) so the dependency points the right way: faultinject's
// *Plan satisfies this interface structurally.
type FaultPlan interface {
	// DayOutage suppresses a whole day — the probe outages of the
	// paper's section 2.3, reproduced on demand.
	DayOutage(day time.Time) bool
	// DropRecord drops the idx-th record of a day — the partial loss
	// of an overloaded capture box.
	DropRecord(day time.Time, idx uint64) bool
}

// EmitDayFaults is EmitDay filtered through a fault plan: it returns
// false without emitting anything when the plan declares the day an
// outage, and otherwise emits the day's records minus the ones the
// plan drops. A nil plan emits everything (and returns true), so call
// sites need no branching.
func (w *World) EmitDayFaults(day time.Time, plan FaultPlan, fn func(*flowrec.Record)) bool {
	if plan == nil {
		w.EmitDay(day, fn)
		return true
	}
	if plan.DayOutage(day) {
		return false
	}
	var idx uint64
	w.EmitDay(day, func(r *flowrec.Record) {
		if !plan.DropRecord(day, idx) {
			fn(r)
		}
		idx++
	})
	return true
}
