package simnet

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/flowrec"
)

func TestCounterfactualNoQUICOutage(t *testing.T) {
	ev := DefaultEvents()
	ev.QUICOutage = false
	w := NewWorldWithEvents(5, Scale{ADSL: 40, FTTH: 20}, ev)
	pb := protoBytes(collectDay(w, date(2015, 12, 20)))
	if pb[flowrec.WebQUIC] == 0 {
		t.Error("QUIC missing mid-December 2015 although the outage is disabled")
	}
}

func TestCounterfactualNoFBZero(t *testing.T) {
	ev := DefaultEvents()
	ev.FBZero = false
	w := NewWorldWithEvents(5, Scale{ADSL: 40, FTTH: 20}, ev)
	pb := protoBytes(collectDay(w, date(2017, 3, 10)))
	if pb[flowrec.WebFBZero] != 0 {
		t.Errorf("FB-Zero present in the no-Zero world: %d bytes", pb[flowrec.WebFBZero])
	}
	// Facebook traffic itself still flows (over TLS-family instead).
	c := classify.Default()
	var fb uint64
	for _, r := range collectDay(w, date(2017, 3, 10)) {
		if c.Lookup(r.ServerName) == "Facebook" {
			fb += r.BytesDown
		}
	}
	if fb == 0 {
		t.Error("Facebook vanished with its protocol")
	}
}

func TestCounterfactualNoNetflix(t *testing.T) {
	ev := DefaultEvents()
	ev.NetflixLaunch = false
	w := NewWorldWithEvents(5, Scale{ADSL: 40, FTTH: 20}, ev)
	c := classify.Default()
	for _, r := range collectDay(w, date(2017, 6, 1)) {
		if c.Lookup(r.ServerName) == "Netflix" {
			t.Fatalf("Netflix flow in the no-launch world: %v", r)
		}
	}
}

func TestCounterfactualNoAutoplaySmooth(t *testing.T) {
	ev := DefaultEvents()
	ev.Autoplay = false
	// The staircase flattens: March→July 2014 growth is modest in the
	// counterfactual, >1.7x in the real world.
	real := facebookDailyMB(date(2014, 7, 20), DefaultEvents()) / facebookDailyMB(date(2014, 2, 20), DefaultEvents())
	flat := facebookDailyMB(date(2014, 7, 20), ev) / facebookDailyMB(date(2014, 2, 20), ev)
	if real < 1.7 {
		t.Errorf("real-world autoplay jump = %.2fx, want > 1.7x", real)
	}
	if flat > 1.3 {
		t.Errorf("counterfactual jump = %.2fx, want smooth", flat)
	}
	// Both worlds end 2017 in the same place.
	a := facebookDailyMB(date(2017, 12, 1), DefaultEvents())
	b := facebookDailyMB(date(2017, 12, 1), ev)
	if a/b > 1.05 || b/a > 1.05 {
		t.Errorf("endpoints diverge: %v vs %v", a, b)
	}
}

func TestCounterfactualPerfectHindsightProbe(t *testing.T) {
	ev := DefaultEvents()
	ev.SPDYEpoch = false
	w := NewWorldWithEvents(5, Scale{ADSL: 40, FTTH: 20}, ev)
	pb := protoBytes(collectDay(w, date(2014, 6, 2)))
	if pb[flowrec.WebSPDY] == 0 {
		t.Error("perfect-hindsight probe still hides SPDY in 2014")
	}
}

func TestDefaultWorldUnchangedByEventsPlumbing(t *testing.T) {
	// NewWorld and NewWorldWithEvents(DefaultEvents()) are the same world.
	day := date(2016, 11, 20)
	a := collectDay(NewWorld(7, Scale{ADSL: 10, FTTH: 5}), day)
	b := collectDay(NewWorldWithEvents(7, Scale{ADSL: 10, FTTH: 5}, DefaultEvents()), day)
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}
