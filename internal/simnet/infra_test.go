package simnet

import (
	"testing"
	"time"

	"repro/internal/stats"
)

// The infrastructure schedules are piecewise functions of the date;
// these tests pin their invariants across the whole span so a curve
// edit cannot silently break Figures 10-11.

// spanSamples walks the span at ~weekly resolution.
func spanSamples() []time.Time {
	return Days(9)
}

func checkTiers(t *testing.T, name string, tiers func(time.Time) []tierChoice) {
	t.Helper()
	for _, d := range spanSamples() {
		total := 0.0
		for _, tc := range tiers(d) {
			if tc.weight < 0 {
				t.Fatalf("%s at %s: negative weight %v", name, d.Format("2006-01-02"), tc.weight)
			}
			if tc.rtt <= 0 {
				t.Fatalf("%s at %s: non-positive rtt", name, d.Format("2006-01-02"))
			}
			if tc.footprint < 0 {
				t.Fatalf("%s at %s: negative footprint", name, d.Format("2006-01-02"))
			}
			total += tc.weight
		}
		if total < 0.99 || total > 1.01 {
			t.Fatalf("%s at %s: weights sum to %v", name, d.Format("2006-01-02"), total)
		}
	}
}

func TestTierWeightsSumToOneAcrossSpan(t *testing.T) {
	checkTiers(t, "facebook", facebookTiers)
	checkTiers(t, "instagram", instagramTiers)
	checkTiers(t, "youtube", youtubeTiers)
	checkTiers(t, "google", googleTiers)
	checkTiers(t, "netflix", netflixTiers)
	checkTiers(t, "whatsapp", whatsappTiers)
	checkTiers(t, "generic", genericTiers)
}

func TestPickServerStaysInPools(t *testing.T) {
	r := stats.NewRand(9)
	for _, d := range spanSamples() {
		for i := 0; i < 50; i++ {
			sc := pickServer(d, r, facebookTiers(d))
			if !poolFacebook.prefix().Contains(sc.addr) && !poolAkamai.prefix().Contains(sc.addr) {
				t.Fatalf("facebook pick %v outside both pools at %s", sc.addr, d.Format("2006-01-02"))
			}
			if sc.rttMin <= 0 {
				t.Fatalf("rtt %v", sc.rttMin)
			}
		}
	}
}

func TestFacebookMigrationMonotone(t *testing.T) {
	// The Akamai weight never increases over time (the migration does
	// not run backwards).
	prev := 2.0
	for _, d := range spanSamples() {
		ak := 0.0
		for _, tc := range facebookTiers(d) {
			if tc.pool.name == "akamai" {
				ak += tc.weight
			}
		}
		if ak > prev+1e-9 {
			t.Fatalf("akamai weight rose to %v at %s", ak, d.Format("2006-01-02"))
		}
		prev = ak
	}
	if prev != 0 {
		t.Errorf("migration incomplete at span end: akamai weight %v", prev)
	}
}

func TestYouTubeInPoPShareGrows(t *testing.T) {
	ispAt := func(d time.Time) float64 {
		for _, tc := range youtubeTiers(d) {
			if tc.pool.name == "isp-cache" {
				return tc.weight
			}
		}
		return 0
	}
	if ispAt(date(2015, 6, 1)) != 0 {
		t.Error("ISP cache before its deployment")
	}
	if got := ispAt(date(2017, 6, 1)); got < 0.5 {
		t.Errorf("2017 ISP-cache share = %v, want majority", got)
	}
}

func TestRampClamps(t *testing.T) {
	t0, t1 := date(2015, 1, 1), date(2016, 1, 1)
	if got := ramp(date(2014, 6, 1), t0, t1, 2, 8); got != 2 {
		t.Errorf("before start: %v", got)
	}
	if got := ramp(date(2017, 6, 1), t0, t1, 2, 8); got != 8 {
		t.Errorf("after end: %v", got)
	}
	mid := ramp(date(2015, 7, 2), t0, t1, 2, 8)
	if mid < 4.9 || mid > 5.1 {
		t.Errorf("midpoint: %v", mid)
	}
}

func TestPoolAddrWraps(t *testing.T) {
	// Drawing past a pool's capacity must wrap, not escape the prefix.
	small := pool{name: "t", base: poolGTT.base, bits: 24, as: poolGTT.as}
	for k := 0; k < 1000; k += 37 {
		if !small.prefix().Contains(small.addr(k)) {
			t.Fatalf("addr(%d) = %v escaped /24", k, small.addr(k))
		}
	}
}

func TestRIBCoversEverySpanMonth(t *testing.T) {
	w := NewWorld(1, Scale{})
	ribs := w.RIBs()
	for _, d := range spanSamples() {
		if ribs.At(d) == nil {
			t.Fatalf("no RIB snapshot for %s", d.Format("2006-01"))
		}
	}
}
