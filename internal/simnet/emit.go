package simnet

import (
	"time"

	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Diurnal hour weights per profile. Values are relative; the drawer
// normalises. Shapes: human browsing climbs through the day and peaks
// at 21-22; video peaks harder in prime time; machine traffic runs at
// night; messaging plateaus from morning to midnight.
var hourWeights = map[dayProfile][24]float64{
	profHuman:   {2, 1, 1, 1, 1, 1, 2, 4, 6, 7, 8, 8, 8, 8, 8, 8, 9, 10, 11, 12, 13, 14, 10, 5},
	profEvening: {3, 1, 1, 1, 1, 1, 1, 2, 3, 4, 4, 5, 6, 6, 5, 5, 6, 7, 9, 12, 16, 18, 12, 6},
	profNight:   {10, 12, 12, 11, 10, 8, 5, 4, 3, 3, 3, 3, 3, 3, 3, 3, 3, 4, 4, 5, 6, 7, 8, 9},
	profAllDay:  {4, 2, 1, 1, 1, 2, 4, 7, 9, 9, 9, 9, 9, 10, 10, 10, 10, 10, 10, 11, 11, 11, 9, 6},
	profFlat:    {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
}

// drawTimeOfDay picks a second of the day under the profile's shape.
func drawTimeOfDay(r *stats.Rand, p dayProfile) time.Duration {
	w := hourWeights[p]
	var total float64
	for _, v := range w {
		total += v
	}
	u := r.Float64() * total
	var cum float64
	hour := 23
	for h, v := range w {
		cum += v
		if u < cum {
			hour = h
			break
		}
	}
	return time.Duration(hour)*time.Hour + time.Duration(r.Intn(3600))*time.Second
}

// spdyVisibleSince is the probe software epoch of event C (Fig 8): the
// fast path reports what a probe of that day would have written, so
// SPDY flows before the update are labelled generic TLS.
var spdyVisibleSince = date(2015, 6, 15)

// SPDYVisibleSince exposes the epoch for wiring packet-fed probes
// identically to the fast path.
func SPDYVisibleSince() time.Time { return spdyVisibleSince }

// applyProbeEpoch mimics the probe-version behaviour on a fast-path
// label (disabled for perfect-hindsight counterfactual worlds).
func (w *World) applyProbeEpoch(web flowrec.WebProto, start time.Time) flowrec.WebProto {
	if w.events.SPDYEpoch && web == flowrec.WebSPDY && start.Before(spdyVisibleSince) {
		return flowrec.WebTLS
	}
	return web
}

// ispResolver answers the simulated population's DNS queries.
var ispResolver = wire.AddrFrom(151, 99, 125, 2)

// dayCtx carries the day-scoped emitter state: the per-service tier
// schedules (pure functions of the day, so evaluated once per day
// instead of once per flow), one scratch Record that every emitted
// flow reuses, and a scratch weights buffer. One dayCtx belongs to one
// emitDayRaw call, so parallel day generation stays safe.
type dayCtx struct {
	tiers   [][]tierChoice
	rec     flowrec.Record
	weights []float64
}

func (w *World) newDayCtx(day time.Time) *dayCtx {
	ctx := &dayCtx{tiers: make([][]tierChoice, len(w.services))}
	for i, svc := range w.services {
		if svc.tiers != nil {
			ctx.tiers[i] = svc.tiers(day)
		}
	}
	return ctx
}

// emitSubscriberDay generates the subscriber's whole day.
func (w *World) emitSubscriberDay(day time.Time, sub subscriber, ctx *dayCtx, fn func(*flowrec.Record)) {
	r := w.subRand(day, sub)

	// Every line, active or not, emits gateway chatter: a few DNS
	// lookups and telemetry beacons. Below the section 3 activity
	// thresholds by construction.
	w.emitGatewayNoise(day, sub, ctx, r, fn)

	if !w.activeToday(day, sub, r) {
		return
	}

	for si, svc := range w.services {
		pop := svc.pop(day, sub.tech)
		if pop <= 0 {
			continue
		}
		if !w.usesToday(day, sub, svc, pop) {
			continue
		}
		meanDown, meanUp := svc.vol(day, sub.tech)
		if meanDown <= 0 && meanUp <= 0 {
			continue
		}
		// Per-day lognormal jitter around the mean, scaled by the
		// line's persistent intensity. σ=0.85 gives the day-to-day
		// light/heavy alternation section 3.1 describes.
		sigma := svc.daySigma
		if sigma == 0 {
			sigma = 0.85
		}
		mult := sub.intensity * r.LogNormal(-sigma*sigma/2, sigma) // mean-preserving jitter
		if sub.tech == flowrec.TechFTTH && svc.ftthBoost > 0 {
			mult *= svc.ftthBoost
		}
		down := meanDown * mult
		up := meanUp * mult
		w.emitServiceFlows(day, sub, svc, ctx, ctx.tiers[si], down, up, r, fn)
	}
}

// usesToday decides service adoption for (subscriber, day). A stable
// per-line affinity draw makes the same households the adopters day
// after day (the paper's "hardcore of P2P users"); a Bernoulli on top
// makes daily popularity come out at pop while weekly popularity runs
// ~1.7x higher — matching the daily 10% vs weekly 18% Netflix gap of
// section 4.3.
func (w *World) usesToday(day time.Time, sub subscriber, svc *serviceModel, pop float64) bool {
	if svc.name == "" {
		return true // background components
	}
	const spread = 1.8
	adopterFrac := pop * spread
	if adopterFrac > 1 {
		adopterFrac = 1
	}
	affinity := float64(stats.Mix64(w.seed, uint64(sub.id), hashService(svc.name))%(1<<24)) / (1 << 24)
	if affinity >= adopterFrac {
		return false
	}
	// Daily activation probability makes E[daily users] = pop.
	dayRand := stats.NewRand(stats.Mix64(w.seed, uint64(sub.id), hashService(svc.name), uint64(dayIndex(day))))
	return dayRand.Bool(pop / adopterFrac)
}

// hashService folds a service name into the seed hierarchy (FNV-1a).
func hashService(s classify.Service) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// emitServiceFlows splits a day's volume for one service into flows.
// tiers is the service's day schedule from the dayCtx (nil when the
// service picks its own endpoints).
func (w *World) emitServiceFlows(day time.Time, sub subscriber, svc *serviceModel, ctx *dayCtx, tiers []tierChoice, down, up float64, r *stats.Rand, fn func(*flowrec.Record)) {
	n := 1
	if svc.meanFlowBytes > 0 {
		n = r.Poisson(down / svc.meanFlowBytes)
		if n < 1 {
			n = 1
		}
		if n > 400 {
			n = 400
		}
	}

	// Flow size weights: lognormal, normalised, so a few flows carry
	// most bytes — like real sessions.
	if cap(ctx.weights) < n {
		ctx.weights = make([]float64, 400) // n is capped at 400 above
	}
	weights := ctx.weights[:n]
	var totalW float64
	for i := range weights {
		weights[i] = r.LogNormal(0, 0.8)
		totalW += weights[i]
	}

	dnsEmitted := false
	for i := 0; i < n; i++ {
		frac := weights[i] / totalW
		fDown := down * frac
		fUp := up * frac
		var sc serverChoice
		if tiers != nil {
			sc = pickServer(day, r, tiers)
		}
		draw := svc.draw(day, r, sc)

		// One DNS lookup precedes the first named flow of the day.
		if !dnsEmitted && draw.domain != "" {
			w.emitDNSFlow(day, sub, svc.profile, ctx, r, fn)
			dnsEmitted = true
		}
		rec := w.buildRecord(day, sub, svc.profile, draw, fDown, fUp, ctx, r)
		fn(rec)
	}
}

// buildRecord assembles one flow record the way the probe would have
// exported it, into the dayCtx scratch record: the pointer handed to
// fn is only valid until the next emitted record.
func (w *World) buildRecord(day time.Time, sub subscriber, prof dayProfile, draw flowDraw, down, up float64, ctx *dayCtx, r *stats.Rand) *flowrec.Record {
	start := day.Add(drawTimeOfDay(r, prof))
	if down < 64 {
		down = 64
	}
	if up < 48 {
		up = 48
	}

	// Transport-level shape.
	proto := flowrec.ProtoTCP
	srvPort := uint16(443)
	switch draw.web {
	case flowrec.WebHTTP:
		srvPort = 80
	case flowrec.WebQUIC:
		proto = flowrec.ProtoUDP
	case flowrec.WebP2P:
		srvPort = uint16(1024 + r.Intn(50000))
		if r.Bool(0.4) {
			proto = flowrec.ProtoUDP
		}
	}

	// Duration from an effective rate: bounded by the access tech and
	// the server side, lognormal around a few Mbit/s.
	rate := r.LogNormal(13.8, 0.7) // median ≈ 1 MB/s per-flow goodput
	capBps := 20e6 / 8
	if sub.tech == flowrec.TechFTTH {
		capBps = 100e6 / 8
	}
	if rate > capBps {
		rate = capBps
	}
	dur := time.Duration((down+up)/rate*float64(time.Second)) + time.Duration(r.Intn(1200))*time.Millisecond
	if dur > 6*time.Hour {
		dur = 6 * time.Hour
	}

	pktsDown := uint32(down/1400) + 1
	pktsUp := uint32(up/1400) + uint32(down/2800) + 1

	// Whole-struct assignment resets every field of the scratch record,
	// including the ones only set conditionally below.
	ctx.rec = flowrec.Record{
		Client:    sub.addr,
		Server:    draw.server.addr,
		CliPort:   uint16(32768 + r.Intn(28000)),
		SrvPort:   srvPort,
		Proto:     proto,
		Tech:      sub.tech,
		SubID:     sub.id,
		Start:     start,
		Duration:  dur,
		PktsUp:    pktsUp,
		PktsDown:  pktsDown,
		BytesUp:   uint64(up),
		BytesDown: uint64(down),
		Web:       w.applyProbeEpoch(draw.web, start),
	}
	rec := &ctx.rec

	// Server name and its source, per protocol (section 2.1).
	if draw.domain != "" {
		switch draw.web {
		case flowrec.WebHTTP:
			rec.ServerName, rec.NameSrc = draw.domain, flowrec.NameHTTPHost
		case flowrec.WebQUIC:
			// No SNI visible: DN-Hunter covers it, minus cache misses.
			if r.Bool(0.95) {
				rec.ServerName, rec.NameSrc = draw.domain, flowrec.NameDNS
			}
		default:
			rec.ServerName, rec.NameSrc = draw.domain, flowrec.NameSNI
		}
	}
	// ALPN reflects the wire bytes (draw.web), not the probe's label:
	// a pre-epoch SPDY flow is reported as TLS but its ALPN was spdy.
	switch draw.web {
	case flowrec.WebHTTP2:
		rec.ALPN = "h2"
	case flowrec.WebSPDY:
		rec.ALPN = "spdy/3.1"
	case flowrec.WebQUIC:
		rec.QUICVer = quicVersionFor(start)
	}

	// TCP RTT estimate toward the server (UDP flows carry none).
	if proto == flowrec.ProtoTCP && draw.server.rttMin > 0 {
		min := time.Duration(float64(draw.server.rttMin) * (1 + 0.08*r.Float64()))
		rec.RTTMin = min
		rec.RTTAvg = min + time.Duration(r.Exp(float64(min)*0.25))
		rec.RTTMax = min + time.Duration(r.Exp(float64(min)*1.5))
		samples := pktsUp / 2
		if samples < 1 {
			samples = 1
		}
		rec.RTTSamples = samples
	}
	return rec
}

// quicVersionFor tracks Google's deployed gQUIC version over time.
func quicVersionFor(d time.Time) string {
	switch {
	case d.Before(date(2015, 6, 1)):
		return "Q024"
	case d.Before(date(2016, 4, 1)):
		return "Q030"
	case d.Before(date(2017, 2, 1)):
		return "Q035"
	default:
		return "Q039"
	}
}

// emitDNSFlow emits the resolver exchange preceding a named flow.
func (w *World) emitDNSFlow(day time.Time, sub subscriber, prof dayProfile, ctx *dayCtx, r *stats.Rand, fn func(*flowrec.Record)) {
	start := day.Add(drawTimeOfDay(r, prof))
	ctx.rec = flowrec.Record{
		Client:    sub.addr,
		Server:    ispResolver,
		CliPort:   uint16(32768 + r.Intn(28000)),
		SrvPort:   53,
		Proto:     flowrec.ProtoUDP,
		Tech:      sub.tech,
		SubID:     sub.id,
		Start:     start,
		Duration:  time.Duration(5+r.Intn(80)) * time.Millisecond,
		PktsUp:    1,
		PktsDown:  1,
		BytesUp:   uint64(30 + r.Intn(40)),
		BytesDown: uint64(60 + r.Intn(200)),
		Web:       flowrec.WebDNS,
	}
	fn(&ctx.rec)
}

// emitGatewayNoise emits the background chatter of a home gateway:
// below the activity filter on its own, so lines with no human use
// stay "inactive" (section 3).
func (w *World) emitGatewayNoise(day time.Time, sub subscriber, ctx *dayCtx, r *stats.Rand, fn func(*flowrec.Record)) {
	n := 2 + r.Intn(4)
	for i := 0; i < n; i++ {
		if r.Bool(0.5) {
			w.emitDNSFlow(day, sub, profNight, ctx, r, fn)
			continue
		}
		start := day.Add(drawTimeOfDay(r, profNight))
		ctx.rec = flowrec.Record{
			Client:    sub.addr,
			Server:    wire.AddrFrom(185, 60, 1, byte(1+r.Intn(250))),
			CliPort:   uint16(32768 + r.Intn(28000)),
			SrvPort:   123, // NTP and friends
			Proto:     flowrec.ProtoUDP,
			Tech:      sub.tech,
			SubID:     sub.id,
			Start:     start,
			Duration:  time.Duration(10+r.Intn(500)) * time.Millisecond,
			PktsUp:    1,
			PktsDown:  1,
			BytesUp:   uint64(48 + r.Intn(100)),
			BytesDown: uint64(48 + r.Intn(400)),
			Web:       flowrec.WebOther,
		}
		fn(&ctx.rec)
	}
}
