package simnet

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/flowrec"
)

// streamTestDays returns n consecutive days starting off days past
// the span start.
func streamTestDays(off, n int) []time.Time {
	days := make([]time.Time, n)
	for i := range days {
		days[i] = SpanStart.AddDate(0, 0, off+i)
	}
	return days
}

// recKey is a collision-proof multiset key for a record: every field
// rendered. Two records with equal keys are equal records.
func recKey(r *flowrec.Record) string {
	return fmt.Sprintf("%v|%v|%d|%d|%d|%d|%d|%s|%s|%d|%d|%d|%d|%d|%q|%d|%q|%q|%s|%s|%s|%d",
		r.Client, r.Server, r.CliPort, r.SrvPort, r.Proto, r.Tech, r.SubID,
		r.Start.UTC().Format(time.RFC3339Nano), r.Duration,
		r.PktsUp, r.PktsDown, r.BytesUp, r.BytesDown,
		r.Web, r.ServerName, r.NameSrc, r.ALPN, r.QUICVer,
		r.RTTMin, r.RTTAvg, r.RTTMax, r.RTTSamples)
}

// TestStreamCompletenessAndOrder holds the stream to its two core
// obligations: export order (the clock never goes backwards) and
// completeness (per Start-day, the stream delivers exactly the
// multiset EmitDay would).
func TestStreamCompletenessAndOrder(t *testing.T) {
	// Seed 7, days 7–10 of the span: this window provably contains
	// flows ending past midnight (days 8 and 10 each have one), so the
	// cross-day interleave below is exercised, not vacuous.
	w := NewWorld(7, Scale{ADSL: 8, FTTH: 4})
	days := streamTestDays(7, 4)

	want := make(map[time.Time]map[string]int)
	for _, day := range days {
		m := make(map[string]int)
		w.EmitDay(day, func(r *flowrec.Record) { m[recKey(r)]++ })
		want[day] = m
	}

	got := make(map[time.Time]map[string]int)
	var prev time.Time
	var straddlers int
	src := w.Stream(days)
	var sr StreamRecord
	var n uint64
	for src.Next(&sr) {
		if sr.At.Before(prev) {
			t.Fatalf("stream clock went backwards: %v after %v", sr.At, prev)
		}
		prev = sr.At
		if sr.Seq != n {
			t.Fatalf("Seq = %d, want %d", sr.Seq, n)
		}
		n++
		if !sr.At.Equal(sr.Rec.Start.Add(sr.Rec.Duration)) {
			t.Fatalf("At %v != Start+Duration %v", sr.At, sr.Rec.Start.Add(sr.Rec.Duration))
		}
		day := sr.Rec.Day()
		if got[day] == nil {
			got[day] = make(map[string]int)
		}
		got[day][recKey(&sr.Rec)]++
		if !sr.At.Before(day.AddDate(0, 0, 1)) {
			straddlers++
		}
	}

	if len(got) != len(want) {
		t.Fatalf("stream covered %d days, want %d", len(got), len(want))
	}
	for day, wm := range want {
		gm := got[day]
		if len(gm) != len(wm) {
			t.Fatalf("day %s: %d distinct records streamed, want %d",
				day.Format("2006-01-02"), len(gm), len(wm))
		}
		for k, c := range wm {
			if gm[k] != c {
				t.Fatalf("day %s: record count mismatch (%d vs %d) for %s",
					day.Format("2006-01-02"), gm[k], c, k)
			}
		}
	}
	// The whole point of streaming by export time: some flows outlive
	// their day. If none do, the interleaving machinery is untested.
	if straddlers == 0 {
		t.Fatal("no record straddled midnight; stream test exercises nothing")
	}
	t.Logf("%d records, %d midnight straddlers", n, straddlers)
}

// TestStreamDeterministicSeek pins determinism (two streams agree
// record for record) and Seek (a re-opened stream fast-forwarded to a
// checkpoint cursor resumes with the identical suffix).
func TestStreamDeterministicSeek(t *testing.T) {
	w := NewWorld(11, Scale{ADSL: 6, FTTH: 3})
	days := streamTestDays(0, 3)

	var all []StreamRecord
	src := w.Stream(days)
	var sr StreamRecord
	for src.Next(&sr) {
		all = append(all, sr)
	}
	if len(all) == 0 {
		t.Fatal("empty stream")
	}

	resume := uint64(len(all) / 3)
	re := w.Stream(days)
	re.Seek(resume)
	if re.Pos() != resume {
		t.Fatalf("Pos after Seek = %d, want %d", re.Pos(), resume)
	}
	for i := resume; re.Next(&sr); i++ {
		wantRec := all[i]
		if sr.Seq != wantRec.Seq || !sr.At.Equal(wantRec.At) ||
			recKey(&sr.Rec) != recKey(&wantRec.Rec) {
			t.Fatalf("resumed stream diverged at seq %d", i)
		}
	}
	if re.Pos() != uint64(len(all)) {
		t.Fatalf("resumed stream ended at %d, want %d", re.Pos(), len(all))
	}
}

// TestStreamStridedDays: a strided day list streams exactly the
// strided days' records — the lake a batch edgegen run would build.
func TestStreamStridedDays(t *testing.T) {
	w := NewWorld(5, Scale{ADSL: 4, FTTH: 2})
	days := []time.Time{SpanStart, SpanStart.AddDate(0, 0, 30), SpanStart.AddDate(0, 0, 90)}
	src := w.Stream(days)
	var sr StreamRecord
	seen := make(map[time.Time]uint64)
	for src.Next(&sr) {
		seen[sr.Rec.Day()]++
	}
	if len(seen) != len(days) {
		t.Fatalf("streamed %d distinct days, want %d", len(seen), len(days))
	}
	for _, day := range days {
		var want uint64
		w.EmitDay(day, func(*flowrec.Record) { want++ })
		if seen[day] != want {
			t.Fatalf("day %s: %d records, want %d", day.Format("2006-01-02"), seen[day], want)
		}
	}
}
