package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/wire"
)

// collectDay gathers one day's records.
func collectDay(w *World, day time.Time) []*flowrec.Record {
	var out []*flowrec.Record
	w.EmitDay(day, func(r *flowrec.Record) {
		c := *r
		out = append(out, &c)
	})
	return out
}

func TestDeterminism(t *testing.T) {
	day := date(2015, 3, 10)
	scale := Scale{ADSL: 30, FTTH: 15}
	a := collectDay(NewWorld(42, scale), day)
	b := collectDay(NewWorld(42, scale), day)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	c := collectDay(NewWorld(43, scale), day)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if *a[i] != *c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical days")
		}
	}
}

func TestPopulationTrends(t *testing.T) {
	w := NewWorld(1, Scale{ADSL: 100, FTTH: 50})
	a13, f13 := w.PopulationOn(date(2013, 7, 15))
	a17, f17 := w.PopulationOn(date(2017, 12, 1))
	if a17 >= a13 {
		t.Errorf("ADSL should shrink: %d -> %d", a13, a17)
	}
	if f17 <= f13 {
		t.Errorf("FTTH should grow: %d -> %d", f13, f17)
	}
	if f13 < 20 || a13 < 99 {
		t.Errorf("2013 population = %d ADSL, %d FTTH", a13, f13)
	}
}

func TestAddrSubscriberRoundTrip(t *testing.T) {
	f := func(idx uint32, ftth bool) bool {
		i := int(idx % (1 << 22))
		tech := flowrec.TechADSL
		if ftth {
			tech = flowrec.TechFTTH
		}
		sub, ok := subscriberOf(addrFor(tech, i))
		if !ok || sub.tech != tech {
			return false
		}
		want := uint32(i)
		if ftth {
			want += ftthIDBase
		}
		return sub.id == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if _, ok := subscriberOf(wire.AddrFrom(93, 1, 2, 3)); ok {
		t.Error("non-10/8 address resolved to a subscriber")
	}
}

// activity groups a day's records by subscriber and applies the
// section 3 filter.
func activeCount(recs []*flowrec.Record) (active, total int) {
	type agg struct {
		flows    int
		down, up uint64
	}
	subs := make(map[uint32]*agg)
	for _, r := range recs {
		a := subs[r.SubID]
		if a == nil {
			a = &agg{}
			subs[r.SubID] = a
		}
		a.flows++
		a.down += r.BytesDown
		a.up += r.BytesUp
	}
	for _, a := range subs {
		if a.flows >= 10 && a.down > 15<<10 && a.up > 5<<10 {
			active++
		}
	}
	return active, len(subs)
}

func TestActiveFractionNear80Percent(t *testing.T) {
	w := NewWorld(7, Scale{ADSL: 120, FTTH: 60})
	recs := collectDay(w, date(2015, 5, 12))
	active, total := activeCount(recs)
	frac := float64(active) / float64(total)
	if frac < 0.70 || frac > 0.92 {
		t.Errorf("active fraction = %.2f (%d/%d), want ~0.8", frac, active, total)
	}
}

// byService sums downloaded bytes per classified service for a user set.
func perUserServiceDown(recs []*flowrec.Record, svc classify.Service, tech flowrec.AccessTech) (users int, meanBytes float64) {
	c := classify.Default()
	per := make(map[uint32]uint64)
	for _, r := range recs {
		if r.Tech != tech {
			continue
		}
		if c.Lookup(r.ServerName) != svc {
			continue
		}
		per[r.SubID] += r.BytesDown
	}
	var sum uint64
	thr := classify.VisitThreshold(svc)
	for _, v := range per {
		if v < thr {
			continue
		}
		users++
		sum += v
	}
	if users > 0 {
		meanBytes = float64(sum) / float64(users)
	}
	return
}

func TestNetflixLaunchDate(t *testing.T) {
	w := NewWorld(11, Scale{ADSL: 80, FTTH: 40})
	before := collectDay(w, date(2015, 9, 1))
	for _, r := range before {
		if classify.Default().Lookup(r.ServerName) == "Netflix" {
			t.Fatalf("Netflix flow before the Italian launch: %v", r)
		}
	}
	after := collectDay(w, date(2017, 6, 1))
	users, mean := perUserServiceDown(after, "Netflix", flowrec.TechFTTH)
	if users == 0 {
		t.Fatal("no FTTH Netflix users in mid-2017")
	}
	if mean < 200*MB {
		t.Errorf("Netflix per-user volume = %.0f MB, want hundreds", mean/MB)
	}
}

func TestUltraHDGapBetweenTechs(t *testing.T) {
	// After October 2016, FTTH Netflix users should out-consume ADSL
	// ones clearly (Fig 6b); average over several days to de-noise.
	w := NewWorld(3, Scale{ADSL: 200, FTTH: 100})
	var fSum, aSum float64
	var fN, aN int
	for i := 0; i < 6; i++ {
		recs := collectDay(w, date(2017, 7, 3+i*3))
		if u, m := perUserServiceDown(recs, "Netflix", flowrec.TechFTTH); u > 0 {
			fSum += m
			fN++
		}
		if u, m := perUserServiceDown(recs, "Netflix", flowrec.TechADSL); u > 0 {
			aSum += m
			aN++
		}
	}
	if fN == 0 || aN == 0 {
		t.Fatalf("missing Netflix users: ftth days %d, adsl days %d", fN, aN)
	}
	if fSum/float64(fN) < 1.15*(aSum/float64(aN)) {
		t.Errorf("FTTH/ADSL Netflix ratio = %.2f, want > 1.15 (Ultra HD)",
			(fSum/float64(fN))/(aSum/float64(aN)))
	}
}

func protoBytes(recs []*flowrec.Record) map[flowrec.WebProto]uint64 {
	out := make(map[flowrec.WebProto]uint64)
	for _, r := range recs {
		out[r.Web] += r.BytesDown + r.BytesUp
	}
	return out
}

func TestProtocolEvents(t *testing.T) {
	w := NewWorld(5, Scale{ADSL: 60, FTTH: 30})

	// Event B/D: QUIC absent before Oct 2014, present Nov 2015, gone
	// mid-December 2015, back in February 2016.
	for _, c := range []struct {
		day  time.Time
		want bool
	}{
		{date(2014, 6, 1), false},
		{date(2015, 11, 10), true},
		{date(2015, 12, 20), false},
		{date(2016, 2, 15), true},
	} {
		pb := protoBytes(collectDay(w, c.day))
		got := pb[flowrec.WebQUIC] > 0
		if got != c.want {
			t.Errorf("%s: QUIC present=%v, want %v", c.day.Format("2006-01-02"), got, c.want)
		}
	}

	// Event C: no SPDY label before the probe update of June 2015.
	pb := protoBytes(collectDay(w, date(2015, 3, 1)))
	if pb[flowrec.WebSPDY] > 0 {
		t.Error("SPDY labelled before the probe update")
	}
	pb = protoBytes(collectDay(w, date(2015, 9, 1)))
	if pb[flowrec.WebSPDY] == 0 {
		t.Error("SPDY invisible after the probe update")
	}

	// Event F: FB-Zero appears suddenly in November 2016.
	pb = protoBytes(collectDay(w, date(2016, 10, 20)))
	if pb[flowrec.WebFBZero] > 0 {
		t.Error("FB-Zero before its deployment")
	}
	pb = protoBytes(collectDay(w, date(2016, 12, 10)))
	if pb[flowrec.WebFBZero] == 0 {
		t.Error("FB-Zero missing after deployment")
	}

	// Event A endpoints: HTTP dominates web bytes in 2013, not in 2017.
	pb13 := protoBytes(collectDay(w, date(2013, 8, 5)))
	pb17 := protoBytes(collectDay(w, date(2017, 11, 6)))
	webTotal := func(m map[flowrec.WebProto]uint64) (http, all uint64) {
		for _, p := range []flowrec.WebProto{flowrec.WebHTTP, flowrec.WebTLS, flowrec.WebSPDY,
			flowrec.WebHTTP2, flowrec.WebQUIC, flowrec.WebFBZero} {
			all += m[p]
		}
		return m[flowrec.WebHTTP], all
	}
	h13, a13 := webTotal(pb13)
	h17, a17 := webTotal(pb17)
	if float64(h13)/float64(a13) < 0.6 {
		t.Errorf("2013 HTTP share = %.2f, want dominant", float64(h13)/float64(a13))
	}
	if float64(h17)/float64(a17) > 0.45 {
		t.Errorf("2017 HTTP share = %.2f, want minority", float64(h17)/float64(a17))
	}
}

func TestGrowthBetween2014And2017(t *testing.T) {
	w := NewWorld(9, Scale{ADSL: 150, FTTH: 60})
	meanDown := func(days []time.Time) float64 {
		var total uint64
		var subDays int
		for _, d := range days {
			recs := collectDay(w, d)
			per := make(map[uint32]uint64)
			for _, r := range recs {
				if r.Tech == flowrec.TechADSL {
					per[r.SubID] += r.BytesDown
				}
			}
			for _, v := range per {
				total += v
			}
			subDays += len(per)
		}
		return float64(total) / float64(subDays)
	}
	d14 := meanDown([]time.Time{date(2014, 4, 7), date(2014, 4, 16), date(2014, 4, 23)})
	d17 := meanDown([]time.Time{date(2017, 4, 5), date(2017, 4, 12), date(2017, 4, 20)})
	ratio := d17 / d14
	if ratio < 1.5 || ratio > 3.2 {
		t.Errorf("2017/2014 ADSL download ratio = %.2f (=%0.f/%0.f MB), want ~2",
			ratio, d17/MB, d14/MB)
	}
	if d14 < 150*MB || d14 > 700*MB {
		t.Errorf("2014 mean daily download = %.0f MB, want a few hundred", d14/MB)
	}
}

func TestRTTEvolutionYouTube(t *testing.T) {
	w := NewWorld(13, Scale{ADSL: 60, FTTH: 30})
	c := classify.Default()
	minRTTs := func(day time.Time) (subMs, total int) {
		for _, r := range collectDay(w, day) {
			if r.RTTSamples == 0 || c.Lookup(r.ServerName) != "YouTube" {
				continue
			}
			total++
			if r.RTTMin < time.Millisecond {
				subMs++
			}
		}
		return
	}
	s14, t14 := minRTTs(date(2014, 4, 10))
	if t14 == 0 {
		t.Fatal("no YouTube TCP flows in 2014")
	}
	if s14 > 0 {
		t.Errorf("sub-millisecond YouTube flows already in 2014: %d/%d", s14, t14)
	}
	s17, t17 := minRTTs(date(2017, 4, 10))
	if t17 == 0 {
		t.Fatal("no YouTube TCP flows in 2017")
	}
	if float64(s17)/float64(t17) < 0.3 {
		t.Errorf("2017 sub-ms YouTube share = %d/%d, want the in-PoP cache to dominate", s17, t17)
	}
}

func TestWhatsAppChristmasPeak(t *testing.T) {
	w := NewWorld(17, Scale{ADSL: 200, FTTH: 80})
	mean := func(day time.Time) float64 {
		_, m := perUserServiceDown(collectDay(w, day), "WhatsApp", flowrec.TechADSL)
		return m
	}
	normal := (mean(date(2016, 12, 6)) + mean(date(2016, 12, 13)) + mean(date(2016, 12, 20))) / 3
	xmas := mean(date(2016, 12, 25))
	if xmas < 2*normal {
		t.Errorf("Christmas WhatsApp volume %.1f MB vs normal %.1f MB: no peak", xmas/MB, normal/MB)
	}
}

func TestRIBsResolveInfra(t *testing.T) {
	w := NewWorld(19, Scale{})
	ribs := w.RIBs()
	day := date(2016, 6, 1)
	cases := []struct {
		addr wire.Addr
		want string
	}{
		{poolFacebook.addr(5), "FACEBOOK"},
		{poolAkamai.addr(10), "AKAMAI"},
		{poolGoogle.addr(3), "GOOGLE"},
		{poolISPCache.addr(1), "ISP"},
		{poolTeliaNet.addr(2), "TELIANET"},
		{poolGTT.addr(2), "GTT"},
	}
	for _, cse := range cases {
		if got := string(ribs.OrgLookup(day, cse.addr)); got != cse.want {
			t.Errorf("OrgLookup(%v) = %s, want %s", cse.addr, got, cse.want)
		}
	}
}

func TestFacebookMigration(t *testing.T) {
	w := NewWorld(23, Scale{ADSL: 100, FTTH: 40})
	ribs := w.RIBs()
	c := classify.Default()
	akamaiShare := func(day time.Time) float64 {
		var ak, tot uint64
		for _, r := range collectDay(w, day) {
			if c.Lookup(r.ServerName) != "Facebook" {
				continue
			}
			tot += r.BytesDown
			if ribs.OrgLookup(day, r.Server) == "AKAMAI" {
				ak += r.BytesDown
			}
		}
		if tot == 0 {
			return -1
		}
		return float64(ak) / float64(tot)
	}
	early := akamaiShare(date(2013, 9, 2))
	late := akamaiShare(date(2016, 7, 4))
	if early < 0.3 {
		t.Errorf("2013 Facebook Akamai share = %.2f, want majority-ish", early)
	}
	if late > 0.05 {
		t.Errorf("2016 Facebook Akamai share = %.2f, want ~0 (migration done)", late)
	}
}

func TestEmitDayPacketsMatchesFastPath(t *testing.T) {
	// The probe, fed the packet rendering of a day, must reproduce the
	// fast path's flow population: same protocol mix, same names.
	day := date(2016, 12, 7) // after FB-Zero and QUIC, SPDY visible
	scale := Scale{ADSL: 6, FTTH: 3}
	w := NewWorld(77, scale)

	fast := collectDay(w, day)
	wantWeb := make(map[flowrec.WebProto]int)
	for _, r := range fast {
		if r.Web != flowrec.WebDNS { // packet path adds DN-Hunter lookups
			wantWeb[r.Web]++
		}
	}

	var got []*flowrec.Record
	p := buildTestProbe(w, func(r *flowrec.Record) {
		c := *r
		got = append(got, &c)
	})
	w.EmitDayPackets(day, PacketOptions{}, p.Feed)
	p.Flush()

	gotWeb := make(map[flowrec.WebProto]int)
	for _, r := range got {
		if r.Web != flowrec.WebDNS {
			gotWeb[r.Web]++
		}
	}
	for web, want := range wantWeb {
		if gotWeb[web] != want {
			t.Errorf("%v flows: probe saw %d, fast path %d", web, gotWeb[web], want)
		}
	}
	for web := range gotWeb {
		if _, ok := wantWeb[web]; !ok {
			t.Errorf("probe invented %v flows", web)
		}
	}

	// Names: every named fast-path record's name appears at least as
	// often in the probe output.
	fastNames := make(map[string]int)
	gotNames := make(map[string]int)
	for _, r := range fast {
		if r.ServerName != "" && r.Web != flowrec.WebDNS {
			fastNames[r.ServerName]++
		}
	}
	for _, r := range got {
		if r.ServerName != "" && r.Web != flowrec.WebDNS {
			gotNames[r.ServerName]++
		}
	}
	for name, n := range fastNames {
		if gotNames[name] < n {
			t.Errorf("name %q: probe saw %d, fast path %d", name, gotNames[name], n)
		}
	}

	// Anonymized client identities agree between the two paths.
	fastClients := make(map[wire.Addr]bool)
	for _, r := range fast {
		fastClients[r.Client] = true
	}
	for _, r := range got {
		if !fastClients[r.Client] {
			t.Errorf("probe produced unknown anonymized client %v", r.Client)
		}
	}
}

// buildTestProbe wires a probe exactly as a deployment against this
// world would.
func buildTestProbe(w *World, fn func(*flowrec.Record)) *probeWrapper {
	return newProbeWrapper(w, fn)
}

func TestRTTMeasuredFromPacketsMatchesModel(t *testing.T) {
	day := date(2017, 4, 10)
	w := NewWorld(31, Scale{ADSL: 4, FTTH: 2})
	var got []*flowrec.Record
	p := buildTestProbe(w, func(r *flowrec.Record) {
		c := *r
		got = append(got, &c)
	})
	w.EmitDayPackets(day, PacketOptions{}, p.Feed)
	p.Flush()

	fast := collectDay(w, day)
	fastRTT := make(map[string]time.Duration) // key: server+cliport
	for _, r := range fast {
		if r.RTTSamples > 0 {
			fastRTT[r.Server.String()+":"+r.Start.String()] = r.RTTMin
		}
	}
	checked := 0
	for _, r := range got {
		if r.RTTSamples == 0 {
			continue
		}
		want, ok := fastRTT[r.Server.String()+":"+r.Start.String()]
		if !ok {
			continue
		}
		checked++
		diff := r.RTTMin - want
		if diff < 0 {
			diff = -diff
		}
		if diff > want/5+time.Millisecond {
			t.Errorf("flow to %v: probe RTT %v, model %v", r.Server, r.RTTMin, want)
		}
	}
	if checked == 0 {
		t.Fatal("no comparable RTT measurements")
	}
}

func BenchmarkEmitDay(b *testing.B) {
	w := NewWorld(1, Scale{ADSL: 50, FTTH: 25})
	day := date(2016, 5, 10)
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		n = 0
		w.EmitDay(day, func(*flowrec.Record) { n++ })
	}
	b.ReportMetric(float64(n), "records/day")
}
