package simnet

import (
	"container/heap"
	"time"

	"repro/internal/flowrec"
)

// StreamSource replays the world the way the probe experienced it:
// continuously, flow by flow, in export order. The probe exports a
// flow record when the flow *ends* (section 2.1 — the record carries
// the whole flow's counters), so the live stream is ordered by
// Start+Duration, not by Start, and records of one calendar day
// interleave with the early flows of the next: a transfer that starts
// at 23:50 and runs 20 minutes is exported at 00:10 the next day but
// belongs, by partitioning key, to the day it started.
//
// The stream's virtual clock is exactly that export time: Clock()
// after Next is the At of the record just delivered, monotonically
// non-decreasing. Day batches (EmitDay) and the stream draw from the
// same ground truth, so the multiset of records per Start-day is
// identical between the two paths — the property the streamed≡batch
// equivalence tier is built on.
type StreamSource struct {
	w    *World
	days []time.Time
	next int // index into days of the next ungenerated day

	pending streamHeap
	genSeq  uint64 // generation order, the deterministic tiebreak
	seq     uint64 // next Seq to hand out
	clock   time.Time
}

// StreamRecord is one element of the stream: a record the source owns
// (no scratch-buffer aliasing — streams buffer across days), its
// export time, and its global position.
type StreamRecord struct {
	// Seq is the 0-based position in the stream: the resume cursor a
	// consumer checkpoints and seeks back to after a restart.
	Seq uint64
	// At is the export (flow end) time — the stream clock.
	At time.Time
	// Rec is the flow record, owned by the caller.
	Rec flowrec.Record
}

// Stream opens a stream over the given days (ascending, as returned
// by Days). Days need not be contiguous: a strided lake streams the
// same days batch generation would write.
func (w *World) Stream(days []time.Time) *StreamSource {
	return &StreamSource{w: w, days: days}
}

// streamItem orders pending records by (export time, generation
// order): export time is the stream clock, and generation order makes
// simultaneous exports deterministic.
type streamItem struct {
	at  time.Time
	gen uint64
	rec flowrec.Record
}

type streamHeap []streamItem

func (h streamHeap) Len() int { return len(h) }
func (h streamHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].gen < h[j].gen
}
func (h streamHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *streamHeap) Push(x interface{}) { *h = append(*h, x.(streamItem)) }
func (h *streamHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = streamItem{}
	*h = old[:n-1]
	return it
}

// generateNextDay buffers one more day of records into the heap.
func (s *StreamSource) generateNextDay() {
	day := s.days[s.next]
	s.next++
	s.w.EmitDay(day, func(r *flowrec.Record) {
		heap.Push(&s.pending, streamItem{
			at:  r.Start.Add(r.Duration),
			gen: s.genSeq,
			rec: *r, // copy out of the emitter's scratch buffer
		})
		s.genSeq++
	})
}

// Next delivers the next record of the stream into sr, returning
// false when the stream is exhausted. The record's fields are owned
// by the caller until the next call.
func (s *StreamSource) Next(sr *StreamRecord) bool {
	for {
		// The head of the heap is safe to emit only once no
		// ungenerated day could still produce an earlier export: day D
		// exports nothing before D's midnight.
		if len(s.pending) > 0 &&
			(s.next >= len(s.days) || s.pending[0].at.Before(s.days[s.next])) {
			it := heap.Pop(&s.pending).(streamItem)
			sr.Seq = s.seq
			sr.At = it.at
			sr.Rec = it.rec
			s.seq++
			s.clock = it.at
			return true
		}
		if s.next >= len(s.days) {
			return false
		}
		s.generateNextDay()
	}
}

// Clock returns the export time of the last record delivered — the
// stream's virtual clock. Zero before the first record.
func (s *StreamSource) Clock() time.Time { return s.clock }

// Pos returns the Seq the next Next call will deliver.
func (s *StreamSource) Pos() uint64 { return s.seq }

// Seek fast-forwards the stream so the next record delivered has
// Seq == seq. Generation is deterministic, so seeking re-derives
// exactly the suffix a crashed consumer has not durably absorbed yet.
// Seeking backwards from the current position is not supported (open
// a fresh stream instead).
func (s *StreamSource) Seek(seq uint64) {
	var sr StreamRecord
	for s.seq < seq {
		if !s.Next(&sr) {
			return
		}
	}
}
