package simnet

import (
	"repro/internal/flowrec"
	"repro/internal/probe"
)

// probeWrapper configures a real probe against a World the way
// cmd/edgeprobe does: subscriber plan, anonymization key, and SPDY
// visibility epoch all come from the world, so the packet path and the
// fast path are comparable record for record.
type probeWrapper struct {
	*probe.Probe
}

func newProbeWrapper(w *World, fn func(*flowrec.Record)) *probeWrapper {
	return &probeWrapper{probe.New(probe.Config{
		Subscriber:       w.SubscriberLookup,
		AnonKey:          w.AnonKey(),
		SPDYVisibleSince: SPDYVisibleSince(),
		OnRecord:         fn,
	})}
}
