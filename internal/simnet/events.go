package simnet

// Events toggles the sudden episodes of the five-year story. The
// default world reproduces the paper; switching one off yields the
// counterfactual — what the ISP would have measured had the episode
// not happened. Section 5's point is exactly that these changes are
// unilateral deployments by big players, invisible to the operator
// until they hit the traffic mix; the toggles let an analyst quantify
// each episode's contribution in isolation.
type Events struct {
	// QUICOutage is event D of Figure 8: Google disabling QUIC for
	// about a month in December 2015.
	QUICOutage bool
	// FBZero is event F: the sudden November 2016 deployment of
	// Facebook's Zero protocol.
	FBZero bool
	// Autoplay is the Figure 9 episode: Facebook enabling video
	// auto-play through 2014. Off, Facebook volume grows smoothly
	// between the same endpoints.
	Autoplay bool
	// NetflixLaunch is the October 2015 Italian launch. Off, Netflix
	// never appears (Figure 6b flatlines).
	NetflixLaunch bool
	// SPDYEpoch is event C: the probe software only reporting SPDY
	// explicitly from June 2015. Off, the probe labels SPDY correctly
	// from day one (a perfect-hindsight probe).
	SPDYEpoch bool
}

// DefaultEvents reproduces the paper.
func DefaultEvents() Events {
	return Events{
		QUICOutage:    true,
		FBZero:        true,
		Autoplay:      true,
		NetflixLaunch: true,
		SPDYEpoch:     true,
	}
}
