package simnet

import (
	"testing"
	"time"

	"repro/internal/flowrec"
)

// fakePlan is a hand-rolled FaultPlan for exercising EmitDayFaults
// without importing faultinject (whose *Plan satisfies the same
// interface structurally).
type fakePlan struct {
	outage bool
	drop   func(idx uint64) bool
}

func (f fakePlan) DayOutage(time.Time) bool { return f.outage }

func (f fakePlan) DropRecord(_ time.Time, idx uint64) bool {
	return f.drop != nil && f.drop(idx)
}

func TestEmitDayFaults(t *testing.T) {
	w := NewWorld(5, Scale{ADSL: 8, FTTH: 4})
	day := time.Date(2016, 4, 12, 0, 0, 0, 0, time.UTC)

	var all int
	if ok := w.EmitDayFaults(day, nil, func(*flowrec.Record) { all++ }); !ok {
		t.Fatal("nil plan reported an outage")
	}
	if all == 0 {
		t.Fatal("baseline day emitted nothing")
	}

	// An outage suppresses the whole day and emits nothing.
	n := 0
	if ok := w.EmitDayFaults(day, fakePlan{outage: true}, func(*flowrec.Record) { n++ }); ok || n != 0 {
		t.Fatalf("outage: ok=%v n=%d, want false, 0", ok, n)
	}

	// Dropping every other record halves the stream.
	n = 0
	plan := fakePlan{drop: func(idx uint64) bool { return idx%2 == 1 }}
	if ok := w.EmitDayFaults(day, plan, func(*flowrec.Record) { n++ }); !ok {
		t.Fatal("drop plan reported an outage")
	}
	want := (all + 1) / 2
	if n != want {
		t.Errorf("emitted %d records with odd indices dropped, want %d of %d", n, want, all)
	}

	// A plan that drops nothing is byte-identical to no plan.
	n = 0
	if ok := w.EmitDayFaults(day, fakePlan{}, func(*flowrec.Record) { n++ }); !ok || n != all {
		t.Errorf("no-op plan: ok=%v n=%d, want true, %d", ok, n, all)
	}
}
