package simnet

import (
	"time"

	"repro/internal/flowrec"
	"repro/internal/stats"
	"repro/internal/wire"
)

// subscriber is one monitored line.
type subscriber struct {
	id   uint32
	tech flowrec.AccessTech
	addr wire.Addr
	// intensity is a persistent per-line multiplier on traffic volume
	// (households differ); lognormal around 1.
	intensity float64
}

// Address plan: subscribers live in 10.0.0.0/8. ADSL lines occupy
// 10.0.0.0–10.127.255.255, FTTH lines 10.128.0.0 and up. The probe's
// subscriber lookup inverts this mapping, so both the packet path and
// the fast path agree on identity and technology.
const ftthAddrBit = 128

// ftthIDBase offsets FTTH subscription IDs so the two pools never
// collide.
const ftthIDBase = 1 << 24

// addrFor returns the fixed address of line i of a technology.
func addrFor(tech flowrec.AccessTech, i int) wire.Addr {
	hi := byte(0)
	if tech == flowrec.TechFTTH {
		hi = ftthAddrBit
	}
	return wire.AddrFrom(10, hi|byte(i>>16&0x7F), byte(i>>8), byte(i))
}

// subscriberOf inverts addrFor.
func subscriberOf(a wire.Addr) (subscriber, bool) {
	if a[0] != 10 {
		return subscriber{}, false
	}
	i := int(a[1]&0x7F)<<16 | int(a[2])<<8 | int(a[3])
	tech := flowrec.TechADSL
	id := uint32(i)
	if a[1]&ftthAddrBit != 0 {
		tech = flowrec.TechFTTH
		id = ftthIDBase + uint32(i)
	}
	return subscriber{id: id, tech: tech, addr: a}, true
}

// population returns the lines present on day. Section 2.1 of the
// paper: "a steady reduction on the number of active ADSL users and an
// increase in FTTH installations" — churn and technology upgrades.
// The model retires ~20% of ADSL lines across the span and doubles
// FTTH installations.
func (w *World) population(day time.Time) []subscriber {
	frac := spanFraction(day)

	adslCount := int(float64(w.scale.ADSL) * (1 - 0.20*frac))
	ftthCount := int(float64(w.scale.FTTH) * (0.5 + 0.5*frac))
	if ftthCount < 1 {
		ftthCount = 1
	}

	out := make([]subscriber, 0, adslCount+ftthCount)
	for i := 0; i < adslCount; i++ {
		out = append(out, w.line(flowrec.TechADSL, i))
	}
	for i := 0; i < ftthCount; i++ {
		out = append(out, w.line(flowrec.TechFTTH, i))
	}
	return out
}

// line materialises one subscriber with its persistent traits.
func (w *World) line(tech flowrec.AccessTech, i int) subscriber {
	s := subscriber{tech: tech, addr: addrFor(tech, i)}
	if tech == flowrec.TechFTTH {
		s.id = ftthIDBase + uint32(i)
	} else {
		s.id = uint32(i)
	}
	r := stats.NewRand(stats.Mix64(w.seed, uint64(s.id), 0x11e))
	s.intensity = r.LogNormal(0, 0.45)
	return s
}

// spanFraction maps a day to [0, 1] across the 54-month span.
func spanFraction(day time.Time) float64 {
	f := float64(day.Sub(SpanStart)) / float64(SpanEnd.Sub(SpanStart))
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// activeToday decides whether a line generates human traffic on day.
// Section 3 of the paper observes ~80% of monitored subscribers pass
// the activity filter each day; inactive lines still emit background
// gateway chatter (below the filter's thresholds).
func (w *World) activeToday(day time.Time, sub subscriber, r *stats.Rand) bool {
	return r.Bool(0.82)
}
