package simnet

import (
	"time"

	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/stats"
	"repro/internal/wire"
)

// MB in bytes, as float for the volume curves.
const MB = float64(1 << 20)

// flowDraw is one flow's service-level properties: where it goes,
// under which name, speaking which protocol. Domain and address are
// drawn together so the domain shares of Fig 11g-i track the
// infrastructure migrations of Fig 11d-f.
type flowDraw struct {
	server serverChoice
	domain string
	web    flowrec.WebProto
}

// dayProfile selects a time-of-day activity shape.
type dayProfile uint8

const (
	profHuman   dayProfile = iota // browsing: day-long, evening peak
	profEvening                   // video: strong prime-time peak
	profNight                     // machine/update traffic: night-heavy
	profAllDay                    // messaging: morning-to-midnight plateau
	profFlat                      // always-on clients (P2P): uniform
)

// serviceModel is everything the generator knows about one service.
type serviceModel struct {
	name          classify.Service
	profile       dayProfile
	meanFlowBytes float64
	// ftthBoost multiplies FTTH volumes for services without their
	// own per-technology curves: FTTH households self-select for
	// heavier usage (Figs 2a, 3a: ~25% more download), while services
	// with explicit tech curves (YouTube equal, Netflix Ultra-HD,
	// Instagram, P2P) keep the paper's per-service story. Zero means 1.
	ftthBoost float64
	// daySigma is the lognormal sigma of the day-to-day volume jitter.
	// Zero means the browsing default (0.85, which produces the
	// light/heavy alternation of section 3.1); steady-consumption
	// services (video sessions, P2P seedboxes) set a tighter 0.5 so
	// their per-user means stay near the Fig 6/7 curves.
	daySigma float64
	// pop is the fraction of active subscribers that use the service
	// on a given day (Figures 5a, 6, 7 top plots).
	pop func(d time.Time, tech flowrec.AccessTech) float64
	// vol is the mean downloaded/uploaded bytes per using subscriber
	// per day (Figures 5b, 6, 7 bottom plots, Figure 9).
	vol func(d time.Time, tech flowrec.AccessTech) (down, up float64)
	// tiers is the day's server-tier schedule. It depends only on the
	// day, so the emitter evaluates it once per day instead of once per
	// flow, and hands draw the server already picked. Nil means the
	// service places its own remote endpoints (P2P).
	tiers func(d time.Time) []tierChoice
	// draw picks domain and protocol for one flow, given the server
	// the emitter picked from tiers (zero when tiers is nil).
	draw func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw
}

// buildServices assembles the seventeen figure services plus P2P and
// the two background components. Parameter values cite the paper
// observation they encode.
func buildServices(ev Events) []*serviceModel {
	return []*serviceModel{
		googleSearch(ev), bing(), duckduckgo(),
		facebook(ev), instagram(), twitter(), linkedin(),
		youtube(ev), netflix(ev), adult(), spotify(), skype(),
		whatsapp(), telegram(), snapchat(),
		amazon(), ebay(),
		peerToPeer(),
		backgroundHuman(), backgroundMachine(),
	}
}

// --- protocol schedule helpers -------------------------------------------

// quicShare is the fraction of Google-family traffic on QUIC: starts
// with the October 2014 Chrome deployment (event B of Fig 8), vanishes
// during the December 2015 security shutdown (event D), returns a
// month later and keeps growing.
func quicShare(d time.Time, ev Events) float64 {
	if d.Before(date(2014, 10, 15)) {
		return 0
	}
	if ev.QUICOutage && !d.Before(date(2015, 12, 5)) && d.Before(date(2016, 1, 10)) {
		return 0 // event D: QUIC disabled for ~a month
	}
	if d.Before(date(2016, 1, 10)) {
		return ramp(d, date(2014, 10, 15), date(2015, 12, 5), 0, 0.30)
	}
	return ramp(d, date(2016, 1, 10), date(2017, 12, 31), 0.32, 0.45)
}

// spdyFrac is the share of the TLS-family traffic carried as SPDY for
// early adopters: steady until Google's February 2016 move to HTTP/2
// (event E), gone within months.
func spdyFrac(d time.Time, peak float64) float64 {
	if d.Before(date(2013, 7, 1)) {
		return 0
	}
	if d.Before(date(2016, 2, 1)) {
		return peak
	}
	return ramp(d, date(2016, 2, 1), date(2016, 6, 1), peak, 0)
}

// h2Frac is the share of TLS-family traffic negotiated as HTTP/2 for
// late adopters (non-Google services), creeping up from 2016.
func h2Frac(d time.Time, max2017 float64) float64 {
	return ramp(d, date(2016, 2, 1), date(2017, 12, 31), 0, max2017)
}

// tlsFamily picks SPDY / HTTP/2 / plain TLS within encrypted traffic.
func tlsFamily(d time.Time, r *stats.Rand, spdyPeak, h2Max float64) flowrec.WebProto {
	u := r.Float64()
	if u < spdyFrac(d, spdyPeak) {
		return flowrec.WebSPDY
	}
	if u < spdyFrac(d, spdyPeak)+h2Frac(d, h2Max) {
		return flowrec.WebHTTP2
	}
	return flowrec.WebTLS
}

// --- the services ---------------------------------------------------------

// googleSearch: ~60% of active users daily, flat across the span
// (Fig 5a); modest volumes; frontends move closer but never in-PoP
// (Fig 10b).
func googleSearch(ev Events) *serviceModel {
	return &serviceModel{
		name: "Google", profile: profHuman, meanFlowBytes: 400 << 10, ftthBoost: 1.20,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 { return 0.60 },
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			return 8 * MB, 1 * MB
		},
		tiers: googleTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			web := flowrec.WebTLS
			if r.Float64() < quicShare(d, ev)*0.5 { // search adopted QUIC more timidly than video
				web = flowrec.WebQUIC
			} else {
				web = tlsFamily(d, r, 0.30, 0.45)
			}
			return flowDraw{server: sc, domain: "www.google.com", web: web}
		},
	}
}

// bing: popularity climbs 15%→45% across the span, mostly Windows
// telemetry contacting bing.com domains (Fig 5a's standout).
func bing() *serviceModel {
	return &serviceModel{
		name: "Bing", profile: profNight, meanFlowBytes: 200 << 10, ftthBoost: 1.20,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			base := ramp(d, date(2013, 7, 1), date(2015, 7, 1), 0.15, 0.22)
			// Windows 10 (July 2015) telemetry accelerates it.
			return base + ramp(d, date(2015, 7, 29), date(2017, 12, 31), 0, 0.23)
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			return 1.5 * MB, 0.3 * MB
		},
		tiers: genericTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			return flowDraw{server: sc, domain: "www.bing.com", web: tlsFamily(d, r, 0, 0.4)}
		},
	}
}

// duckduckgo: "used only by few tens of users (less than 0.3% of
// population)".
func duckduckgo() *serviceModel {
	return &serviceModel{
		name: "DuckDuckGo", profile: profHuman, meanFlowBytes: 200 << 10,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 { return 0.0025 },
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			return 1 * MB, 0.2 * MB
		},
		tiers: genericTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			return flowDraw{server: sc, domain: "duckduckgo.com", web: tlsFamily(d, r, 0, 0.3)}
		},
	}
}

// facebook encodes two headline episodes: the video-autoplay volume
// jump of 2014 (Fig 9: ~35 MB/user/day in February, ~70 by April, a
// May pause, ~90 from July) and the sudden FB-Zero deployment of
// November 2016 (event F of Fig 8, >half of Facebook traffic within
// weeks). Infrastructure follows facebookTiers (Fig 10a, 11 left).
func facebook(ev Events) *serviceModel {
	return &serviceModel{
		name: "Facebook", profile: profAllDay, meanFlowBytes: 3 * MB, ftthBoost: 1.25, daySigma: 0.6,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			return ramp(d, date(2013, 7, 1), date(2017, 12, 31), 0.50, 0.58)
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			down := facebookDailyMB(d, ev) * MB
			return down, down * 0.12
		},
		tiers: facebookTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			onAkamai := poolAkamai.prefix().Contains(sc.addr)
			var domain string
			switch {
			case onAkamai && r.Bool(0.7):
				domain = "fbstatic-a.akamaihd.net"
			case onAkamai:
				domain = "fbcdn-profile-a.akamaihd.net"
			case r.Bool(0.6):
				domain = "scontent.xx.fbcdn.net"
			case r.Bool(0.5):
				domain = "www.facebook.com"
			default:
				domain = "graph.facebook.com"
			}
			web := tlsFamily(d, r, 0.15, 0.35)
			// Event F: the mobile app's Zero protocol, deployed
			// suddenly in November 2016, takes >half of FB traffic.
			if ev.FBZero {
				zero := ramp(d, date(2016, 11, 5), date(2016, 11, 25), 0, 0.55)
				if r.Float64() < zero {
					web = flowrec.WebFBZero
				}
			}
			return flowDraw{server: sc, domain: domain, web: web}
		},
	}
}

// facebookDailyMB is the Fig 9 curve extended across the span.
func facebookDailyMB(d time.Time, ev Events) float64 {
	// Values run ~0.72x the Fig 9 y-axis because the measured
	// per-user mean conditions on the visit threshold, which inflates
	// it back by ~1.4x (lognormal day jitter truncated from below).
	if !ev.Autoplay {
		// Counterfactual: no auto-play — smooth organic growth
		// between the same endpoints, no 2014 staircase.
		return ramp(d, date(2013, 7, 1), date(2017, 12, 31), 22, 110)
	}
	switch {
	case d.Before(date(2014, 3, 1)):
		return ramp(d, date(2013, 7, 1), date(2014, 3, 1), 22, 26)
	case d.Before(date(2014, 5, 1)): // autoplay rollout
		return ramp(d, date(2014, 3, 1), date(2014, 5, 1), 26, 52)
	case d.Before(date(2014, 6, 1)): // the May pause
		return 52
	case d.Before(date(2014, 7, 15)): // second wave
		return ramp(d, date(2014, 6, 1), date(2014, 7, 15), 52, 66)
	default: // organic growth afterwards
		return ramp(d, date(2014, 7, 15), date(2017, 12, 31), 66, 110)
	}
}

// instagram: steady popularity growth and a massive volume ramp, to
// ~200 MB (FTTH) / ~120 MB (ADSL) per active user-day by 2017 — "a
// quarter of the traffic of Netflix users" (Fig 7c).
func instagram() *serviceModel {
	return &serviceModel{
		name: "Instagram", profile: profAllDay, meanFlowBytes: 4 * MB, daySigma: 0.6,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			return stats.Logistic(yearsSince2013(d), 2.8, 1.1, 0.38)
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			top := 120.0
			if tech == flowrec.TechFTTH {
				top = 200
			}
			down := ramp(d, date(2013, 7, 1), date(2017, 12, 31), 15, top) * MB
			return down, down * 0.15
		},
		tiers: instagramTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			var domain string
			switch {
			case poolInstagram.prefix().Contains(sc.addr):
				if r.Bool(0.8) {
					domain = "scontent.cdninstagram.com"
				} else {
					domain = "instagram.com"
				}
			case r.Bool(0.7):
				domain = "instagramstatic-a.akamaihd.net"
			default:
				domain = "instagram.com"
			}
			return flowDraw{server: sc, domain: domain, web: tlsFamily(d, r, 0.10, 0.35)}
		},
	}
}

func twitter() *serviceModel {
	return &serviceModel{
		name: "Twitter", profile: profAllDay, meanFlowBytes: 500 << 10, ftthBoost: 1.30,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			return ramp(d, date(2013, 7, 1), date(2017, 12, 31), 0.18, 0.25)
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			down := ramp(d, date(2013, 7, 1), date(2017, 12, 31), 4, 8) * MB
			return down, down * 0.1
		},
		tiers: genericTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			domain := "pbs.twimg.com"
			if r.Bool(0.4) {
				domain = "twitter.com"
			}
			return flowDraw{server: sc, domain: domain, web: tlsFamily(d, r, 0.10, 0.30)}
		},
	}
}

func linkedin() *serviceModel {
	return &serviceModel{
		name: "LinkedIn", profile: profHuman, meanFlowBytes: 300 << 10,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 { return 0.08 },
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			return 2 * MB, 0.3 * MB
		},
		tiers: genericTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			domain := "www.linkedin.com"
			if r.Bool(0.4) {
				domain = "static.licdn.com"
			}
			return flowDraw{server: sc, domain: domain, web: tlsFamily(d, r, 0, 0.5)}
		},
	}
}

// youtube: the consolidated giant — >40% of active subscribers daily,
// >400 MB per user-day, identical across access technologies (Fig 6c);
// migrates to HTTPS in 2014 (event A), adopts QUIC (event B), and ends
// up served from in-PoP caches at sub-millisecond RTT (Fig 10b, 11
// right column).
func youtube(ev Events) *serviceModel {
	return &serviceModel{
		name: "YouTube", profile: profEvening, meanFlowBytes: 30 * MB, daySigma: 0.5,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			return ramp(d, date(2013, 7, 1), date(2017, 12, 31), 0.40, 0.46)
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			down := ramp(d, date(2013, 7, 1), date(2017, 12, 31), 260, 440) * MB
			return down, down * 0.03
		},
		tiers: youtubeTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			domain := youtubeDomain(d, r, sc)
			// Event A: HTTP video until January 2014, migrating to
			// encrypted transport over ~9 months.
			httpShare := ramp(d, date(2014, 1, 10), date(2015, 3, 1), 0.95, 0.04)
			var web flowrec.WebProto
			u := r.Float64()
			switch {
			case u < httpShare:
				web = flowrec.WebHTTP
			case r.Float64() < quicShare(d, ev):
				web = flowrec.WebQUIC
			default:
				web = tlsFamily(d, r, 0.30, 0.50)
			}
			return flowDraw{server: sc, domain: domain, web: web}
		},
	}
}

// youtubeDomain reproduces Fig 11i: youtube.com only until January
// 2014, googlevideo.com dominant immediately after, gvt1.com appearing
// in 2015.
func youtubeDomain(d time.Time, r *stats.Rand, sc serverChoice) string {
	if poolISPCache.prefix().Contains(sc.addr) {
		return googlevideoNames[r.Intn(8)]
	}
	if d.Before(date(2014, 1, 15)) {
		return "v12.lscache.c.youtube.com"
	}
	if !d.Before(date(2015, 6, 1)) && r.Bool(0.12) {
		return "redirector.gvt1.com"
	}
	if r.Bool(0.08) {
		return "www.youtube.com"
	}
	return googlevideoNames[r.Intn(8)]
}

// googlevideoNames are the r1–r8 cache hostnames, precomputed so the
// per-flow draw costs an index, not an fmt.Sprintf. Index k stands in
// for the old 1+Intn(8) draw of k+1, consuming the same randomness.
var googlevideoNames = [8]string{
	"r1---sn-hpa7kn7s.googlevideo.com", "r2---sn-hpa7kn7s.googlevideo.com",
	"r3---sn-hpa7kn7s.googlevideo.com", "r4---sn-hpa7kn7s.googlevideo.com",
	"r5---sn-hpa7kn7s.googlevideo.com", "r6---sn-hpa7kn7s.googlevideo.com",
	"r7---sn-hpa7kn7s.googlevideo.com", "r8---sn-hpa7kn7s.googlevideo.com",
}

// netflix: launches in Italy on 22 October 2015; by the end of 2017
// ~10% of FTTH subscribers use it daily; volumes are equal across
// technologies until the October 2016 Ultra-HD tier pushes FTTH users
// toward 1 GB/day while ADSL cannot follow (Fig 6b).
func netflix(ev Events) *serviceModel {
	launch := date(2015, 10, 22)
	return &serviceModel{
		name: "Netflix", profile: profEvening, meanFlowBytes: 60 * MB, daySigma: 0.5,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			if !ev.NetflixLaunch || d.Before(launch) {
				return 0
			}
			top := 0.065
			if tech == flowrec.TechFTTH {
				top = 0.10
			}
			return ramp(d, launch, date(2017, 12, 31), 0.01, top)
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			if !ev.NetflixLaunch || d.Before(launch) {
				return 0, 0
			}
			base := ramp(d, launch, date(2016, 10, 1), 420, 600)
			if tech == flowrec.TechFTTH {
				// Ultra HD from October 2016.
				base += ramp(d, date(2016, 10, 1), date(2017, 6, 1), 0, 350)
			}
			return base * MB, base * MB * 0.015
		},
		tiers: netflixTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			domain := "occ-0-769-768.1.nflxvideo.net"
			if r.Bool(0.15) {
				domain = "www.netflix.com"
			}
			return flowDraw{server: sc, domain: domain, web: tlsFamily(d, r, 0, 0.30)}
		},
	}
}

func adult() *serviceModel {
	return &serviceModel{
		name: "Adult", profile: profNight, meanFlowBytes: 8 * MB, ftthBoost: 1.30, daySigma: 0.6,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 { return 0.15 },
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			return 35 * MB, 1.5 * MB
		},
		tiers: genericTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			domain := "cdn.phncdn.com"
			if r.Bool(0.3) {
				domain = "www.xvideos.com"
			}
			httpShare := ramp(d, date(2013, 7, 1), date(2017, 12, 31), 0.97, 0.65)
			web := flowrec.WebHTTP
			if r.Float64() > httpShare {
				web = tlsFamily(d, r, 0, 0.3)
			}
			return flowDraw{server: sc, domain: domain, web: web}
		},
	}
}

func spotify() *serviceModel {
	return &serviceModel{
		name: "Spotify", profile: profHuman, meanFlowBytes: 4 * MB,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			return stats.Logistic(yearsSince2013(d), 3.0, 1.0, 0.11)
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			return 25 * MB, 1 * MB
		},
		tiers: genericTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			domain := "audio-fa.scdn.co"
			if r.Bool(0.3) {
				domain = "api.spotify.com"
			}
			return flowDraw{server: sc, domain: domain, web: tlsFamily(d, r, 0, 0.5)}
		},
	}
}

// skype: slowly losing ground across the span.
func skype() *serviceModel {
	return &serviceModel{
		name: "Skype", profile: profHuman, meanFlowBytes: 1.5 * MB,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			return ramp(d, date(2013, 7, 1), date(2017, 12, 31), 0.13, 0.07)
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			return 12 * MB, 8 * MB
		},
		tiers: genericTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			return flowDraw{server: sc, domain: "api.skype.com", web: tlsFamily(d, r, 0, 0.3)}
		},
	}
}

// whatsapp: near-saturating popularity, ~10 MB/user-day of multimedia
// by 2017, with the famous Christmas / New Year's Eve spikes (Fig 7b);
// servers stay centralised at ~100 ms (the Fig 10 exception).
func whatsapp() *serviceModel {
	return &serviceModel{
		name: "WhatsApp", profile: profAllDay, meanFlowBytes: 400 << 10,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			return stats.Logistic(yearsSince2013(d), 1.8, 1.2, 0.62)
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			down := ramp(d, date(2013, 7, 1), date(2017, 12, 31), 1.5, 10) * MB
			down *= holidayBoost(d)
			return down, down * 0.7 // chat media flows are symmetric-ish
		},
		tiers: whatsappTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			domain := "mmx-ds.cdn.whatsapp.net"
			if r.Bool(0.3) {
				domain = "e1.whatsapp.net"
			}
			return flowDraw{server: sc, domain: domain, web: tlsFamily(d, r, 0, 0.2)}
		},
	}
}

// holidayBoost multiplies messaging volume on the days "when people
// exchange wishes using WhatsApp" (Fig 7b's peaks).
func holidayBoost(d time.Time) float64 {
	m, day := d.Month(), d.Day()
	switch {
	case m == time.December && (day == 24 || day == 25 || day == 31):
		return 4
	case m == time.January && day == 1:
		return 4
	default:
		return 1
	}
}

func telegram() *serviceModel {
	return &serviceModel{
		name: "Telegram", profile: profAllDay, meanFlowBytes: 300 << 10,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			return stats.Logistic(yearsSince2013(d), 3.8, 1.3, 0.09)
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			return 3 * MB, 1.5 * MB
		},
		tiers: genericTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			return flowDraw{server: sc, domain: "venus.web.telegram.org", web: tlsFamily(d, r, 0, 0.3)}
		},
	}
}

// snapchat: the boom-and-bust of Fig 7a — popularity climbs through
// 2015 to ~10% in 2016 and stays sticky, while per-user volume crests
// near 100 MB/day in 2016 and collapses below 20 MB in 2017 ("people
// keep having the app, but hardly use it").
func snapchat() *serviceModel {
	return &serviceModel{
		name: "SnapChat", profile: profAllDay, meanFlowBytes: 2 * MB, daySigma: 0.6,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			rise := stats.Logistic(yearsSince2013(d), 2.9, 2.2, 0.105)
			fade := ramp(d, date(2017, 1, 1), date(2017, 12, 31), 0, 0.02)
			return rise - fade
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			var down float64
			switch {
			case d.Before(date(2015, 1, 1)):
				down = ramp(d, date(2013, 7, 1), date(2015, 1, 1), 5, 30)
			case d.Before(date(2016, 9, 1)):
				down = ramp(d, date(2015, 1, 1), date(2016, 3, 1), 30, 100)
			default:
				down = ramp(d, date(2016, 9, 1), date(2017, 8, 1), 100, 16)
			}
			return down * MB, down * MB * 0.4
		},
		tiers: genericTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			return flowDraw{server: sc, domain: "app.snapchat.com", web: tlsFamily(d, r, 0, 0.4)}
		},
	}
}

func amazon() *serviceModel {
	return &serviceModel{
		name: "Amazon", profile: profHuman, meanFlowBytes: 500 << 10, ftthBoost: 1.30,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			return ramp(d, date(2013, 7, 1), date(2017, 12, 31), 0.10, 0.26)
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			return 8 * MB, 0.8 * MB
		},
		tiers: genericTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			domain := "images-eu.ssl-images-amazon.com"
			if r.Bool(0.4) {
				domain = "www.amazon.it"
			}
			return flowDraw{server: sc, domain: domain, web: tlsFamily(d, r, 0, 0.5)}
		},
	}
}

func ebay() *serviceModel {
	return &serviceModel{
		name: "Ebay", profile: profHuman, meanFlowBytes: 400 << 10, ftthBoost: 1.30,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			return ramp(d, date(2013, 7, 1), date(2017, 12, 31), 0.12, 0.10)
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			return 4 * MB, 0.4 * MB
		},
		tiers: genericTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			domain := "i.ebayimg.com.ebaystatic.com"
			if r.Bool(0.5) {
				domain = "www.ebay.it"
			}
			return flowDraw{server: sc, domain: domain, web: tlsFamily(d, r, 0, 0.4)}
		},
	}
}

// peerToPeer: the downfall of Fig 6a. A shrinking hardcore of users
// (FTTH abandons earlier), each still moving ~400 MB/day down until
// late 2016, then declining; uploads are what put the 2014 bump in
// Fig 2b's tail.
func peerToPeer() *serviceModel {
	return &serviceModel{
		name: "Peer-To-Peer", profile: profHuman, meanFlowBytes: 8 * MB, daySigma: 0.5,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 {
			if tech == flowrec.TechFTTH {
				// Earlier abandonment (Fig 6a): decline starts 2015.
				return ramp(d, date(2015, 1, 1), date(2017, 12, 31), 0.15, 0.035)
			}
			return ramp(d, date(2014, 1, 1), date(2017, 12, 31), 0.155, 0.05)
		},
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			down := 400.0
			if !d.Before(date(2016, 10, 1)) {
				down = ramp(d, date(2016, 10, 1), date(2017, 12, 31), 400, 240)
			}
			up := 300.0
			if tech == flowrec.TechFTTH {
				up = 400
				if !d.Before(date(2015, 1, 1)) {
					up = ramp(d, date(2015, 1, 1), date(2017, 12, 31), 400, 150)
				}
			} else if !d.Before(date(2016, 1, 1)) {
				up = ramp(d, date(2016, 1, 1), date(2017, 12, 31), 300, 120)
			}
			return down * MB, up * MB
		},
		draw: func(d time.Time, r *stats.Rand, _ serverChoice) flowDraw {
			// Remote peers are residential addresses all over; RTT is
			// wide and uninteresting.
			peerNets := []byte{78, 93, 2, 95, 201, 113}
			a := wire.AddrFrom(peerNets[r.Intn(len(peerNets))], byte(r.Intn(256)), byte(r.Intn(256)), byte(1+r.Intn(254)))
			rtt := time.Duration(20+r.Intn(140)) * time.Millisecond
			return flowDraw{server: serverChoice{addr: a, rttMin: rtt}, web: flowrec.WebP2P}
		},
	}
}

// backgroundHuman is everything else people browse: news, mail, web
// apps. It anchors the light-usage mode of Fig 2 and the diurnal shape
// of Fig 4.
func backgroundHuman() *serviceModel {
	return &serviceModel{
		name: "", profile: profHuman, meanFlowBytes: 1 * MB, ftthBoost: 1.35,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 { return 1 },
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			down := ramp(d, date(2013, 7, 1), date(2017, 12, 31), 45, 120) * MB
			// Upload share grows: user-generated content to cloud
			// storage and social networks (section 3.2).
			return down, down * ramp(d, date(2013, 7, 1), date(2017, 12, 31), 0.06, 0.16)
		},
		tiers: genericTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			domain := genericDomains[r.Intn(len(genericDomains))]
			httpShare := ramp(d, date(2013, 7, 1), date(2017, 12, 31), 0.96, 0.72)
			web := flowrec.WebHTTP
			if r.Float64() > httpShare {
				web = tlsFamily(d, r, 0.05, 0.35)
			}
			return flowDraw{server: sc, domain: domain, web: web}
		},
	}
}

// backgroundMachine is automatic traffic — app updates, telemetry,
// IoT. It grows faster than human traffic and concentrates at night,
// which is what tilts Fig 4's ratio curve upward in the small hours.
func backgroundMachine() *serviceModel {
	return &serviceModel{
		name: "", profile: profNight, meanFlowBytes: 2 * MB, ftthBoost: 1.35,
		pop: func(d time.Time, tech flowrec.AccessTech) float64 { return 1 },
		vol: func(d time.Time, tech flowrec.AccessTech) (float64, float64) {
			// Quadratic growth: machine-generated traffic (updates,
			// telemetry, IoT) barely registers in 2013 and becomes a
			// first-class citizen by 2017 — the driver of Fig 4's
			// late-night growth excess.
			f := spanFraction(d)
			down := (8 + 95*f*f) * MB
			return down, down * 0.05
		},
		tiers: genericTiers,
		draw: func(d time.Time, r *stats.Rand, sc serverChoice) flowDraw {
			domain := machineDomains[r.Intn(len(machineDomains))]
			httpShare := ramp(d, date(2013, 7, 1), date(2017, 12, 31), 0.90, 0.55)
			web := flowrec.WebHTTP
			if r.Float64() > httpShare {
				web = tlsFamily(d, r, 0, 0.5)
			}
			return flowDraw{server: sc, domain: domain, web: web}
		},
	}
}

// genericDomains are deliberately outside every classification rule.
var genericDomains = []string{
	"www.corriere.example.it", "www.repubblica.example.it", "cdn.banner-net.example",
	"mail.libero.example.it", "www.meteo.example.it", "img.news-cdn.example",
	"shop.zalando.example", "www.wikipedia.example.org", "static.forumfree.example",
}

// machineDomains look like update/telemetry endpoints.
var machineDomains = []string{
	"update.microsoft.example", "swcdn.apple.example", "firmware.iot-vendor.example",
	"metrics.app-analytics.example", "ota.android.example",
}
