package simnet

import (
	"testing"

	"repro/internal/probe"
	"repro/internal/wire"
)

func TestEmitDayPacketsDeterministic(t *testing.T) {
	day := date(2016, 6, 1)
	scale := Scale{ADSL: 3, FTTH: 2}
	collect := func() []probe.Packet {
		var out []probe.Packet
		NewWorld(5, scale).EmitDayPackets(day, PacketOptions{}, func(p probe.Packet) {
			out = append(out, p)
		})
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("packet counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].TS.Equal(b[i].TS) || len(a[i].Data) != len(b[i].Data) {
			t.Fatalf("packet %d differs", i)
		}
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				t.Fatalf("packet %d byte %d differs", i, j)
			}
		}
	}
}

func TestEmitDayPacketsParseCleanly(t *testing.T) {
	// Every emitted frame must decode as Ethernet/IPv4/(TCP|UDP):
	// the simulator is not allowed to fabricate malformed packets.
	day := date(2015, 3, 2)
	w := NewWorld(9, Scale{ADSL: 4, FTTH: 2})
	parser := wire.NewLayerParser(wire.LayerEthernet)
	var n, tcp, udp int
	w.EmitDayPackets(day, PacketOptions{MaxFlowBytes: 8 << 10}, func(p probe.Packet) {
		n++
		d, err := parser.Parse(p.Data)
		if err != nil {
			t.Fatalf("packet %d: %v", n, err)
		}
		switch {
		case d.Has(wire.LayerTCP):
			tcp++
		case d.Has(wire.LayerUDP):
			udp++
		default:
			t.Fatalf("packet %d has no transport layer: %v", n, d.Layers)
		}
	})
	if n == 0 || tcp == 0 || udp == 0 {
		t.Fatalf("packet mix: total %d, tcp %d, udp %d", n, tcp, udp)
	}
}

func TestPacketFlowByteCap(t *testing.T) {
	day := date(2017, 4, 10)
	w := NewWorld(3, Scale{ADSL: 3, FTTH: 2})
	const cap = 4 << 10
	var total int
	w.EmitDayPackets(day, PacketOptions{MaxFlowBytes: cap}, func(p probe.Packet) {
		total += len(p.Data)
	})
	// With a tiny cap, the whole day must stay small: no flow can
	// materialise more than ~2*cap plus handshakes.
	if total > 6<<20 {
		t.Errorf("capped packet day still emitted %d bytes", total)
	}
}
