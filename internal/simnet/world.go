// Package simnet is the reproduction's substitute for the paper's
// private five-year dataset: a deterministic model of a two-PoP ISP
// population (ADSL + FTTH subscribers), the services they use, the
// protocols those services speak, and the infrastructure that serves
// them, over July 2013 – December 2017.
//
// The model can emit traffic two ways, from one ground truth:
//
//   - flow records directly (EmitDay), bit-compatible with what the
//     probe would export — the fast path used for multi-year runs; and
//   - packets (EmitDayPackets), with real TLS/HTTP/QUIC/DNS payload
//     bytes, which exercise the entire probe stack end to end.
//
// All randomness derives from Mix64(seed, subscriber, day), so any day
// of the five years can be generated independently, in parallel, and
// reproducibly.
//
// The per-service parameter curves encode the population-level trends
// the paper reports (each is documented where defined, with the figure
// it drives); the analytics pipeline never reads them — it measures
// them back from the emitted flow records.
package simnet

import (
	"time"

	"repro/internal/anonymize"
	"repro/internal/asn"
	"repro/internal/flowrec"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Scale sets the population size of a simulated deployment. The
// paper's PoPs cover ~10000 ADSL and ~5000 FTTH lines; the default
// scale keeps the 2:1 ratio at laptop size. Shares, distributions and
// per-user volumes are scale-free.
type Scale struct {
	ADSL int // ADSL subscriber lines at the start of the span
	FTTH int // FTTH subscriber lines at the end of the span (they grow)
}

// DefaultScale is used when a Scale field is zero.
var DefaultScale = Scale{ADSL: 240, FTTH: 120}

// Span of the dataset: 54 months, July 2013 through December 2017,
// matching Figure 3's x axis.
var (
	SpanStart = time.Date(2013, 7, 1, 0, 0, 0, 0, time.UTC)
	SpanEnd   = time.Date(2017, 12, 31, 0, 0, 0, 0, time.UTC)
)

// World is one deterministic instance of the simulated ISP.
type World struct {
	seed     uint64
	scale    Scale
	events   Events
	anon     *anonymize.Mapper
	services []*serviceModel
	infra    *infraModel
}

// NewWorld builds a world from a seed, with every historical event
// enabled. Equal seeds and scales give byte-identical datasets.
func NewWorld(seed uint64, scale Scale) *World {
	return NewWorldWithEvents(seed, scale, DefaultEvents())
}

// NewWorldWithEvents builds a world with a custom event set — the
// counterfactual instrument (see Events).
func NewWorldWithEvents(seed uint64, scale Scale, ev Events) *World {
	if scale.ADSL == 0 {
		scale.ADSL = DefaultScale.ADSL
	}
	if scale.FTTH == 0 {
		scale.FTTH = DefaultScale.FTTH
	}
	infra := newInfraModel(seed)
	return &World{
		seed:     seed,
		scale:    scale,
		events:   ev,
		anon:     anonymize.New(anonKeyFor(seed)),
		services: buildServices(ev),
		infra:    infra,
	}
}

// anonKeyFor derives the probe anonymization key from the world seed,
// so the flow fast path and a packet-fed probe produce the same
// anonymized client addresses.
func anonKeyFor(seed uint64) []byte {
	return []byte{
		byte(seed), byte(seed >> 8), byte(seed >> 16), byte(seed >> 24),
		byte(seed >> 32), byte(seed >> 40), byte(seed >> 48), byte(seed >> 56),
		'e', 'd', 'g', 'e',
	}
}

// AnonKey exposes the derived key so external probes can be configured
// to match the fast path.
func (w *World) AnonKey() []byte { return anonKeyFor(w.seed) }

// Days returns every day of the span with the given stride (1 = all
// days). The slice always includes SpanStart.
func Days(stride int) []time.Time {
	if stride < 1 {
		stride = 1
	}
	var out []time.Time
	for d := SpanStart; !d.After(SpanEnd); d = d.AddDate(0, 0, stride) {
		out = append(out, d)
	}
	return out
}

// dayIndex numbers days from SpanStart.
func dayIndex(day time.Time) int {
	return int(day.UTC().Sub(SpanStart) / (24 * time.Hour))
}

// yearsSince2013 expresses a date as fractional years past 2013-01-01,
// the time variable of every trend curve in the model.
func yearsSince2013(d time.Time) float64 {
	return d.Sub(time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)).Hours() / (24 * 365.25)
}

// RIBs returns the monthly RIB snapshots for the span, consistent with
// the infrastructure model (the reproduction's Route Views stand-in).
func (w *World) RIBs() *asn.RIBSet { return w.infra.ribs() }

// SubscriberLookup resolves a client address to its subscription, in
// the form the probe wants. It is the source of truth the packet path
// and the fast path share.
func (w *World) SubscriberLookup(a wire.Addr) (probe.SubscriberInfo, bool) {
	sub, ok := subscriberOf(a)
	if !ok {
		return probe.SubscriberInfo{}, false
	}
	return probe.SubscriberInfo{ID: sub.id, Tech: sub.tech}, true
}

// EmitDay generates every flow record of one day, in subscriber order,
// and passes each to fn. Records carry anonymized client addresses,
// exactly as the probe would export them.
//
// The *Record handed to fn is a per-call scratch buffer, overwritten
// by the next record — exactly like flowrec.Store's streaming reader.
// Consumers that retain records must copy them (c := *rec).
func (w *World) EmitDay(day time.Time, fn func(*flowrec.Record)) {
	w.emitDayRaw(day, func(rec *flowrec.Record) {
		rec.Client = w.anon.Anon(rec.Client)
		fn(rec)
	})
}

// emitDayRaw is EmitDay with real (pre-anonymization) client
// addresses; the packet path needs them, since anonymizing is the
// probe's job there. The dayCtx — cached tier schedules plus the
// scratch record — lives and dies with this call, so concurrent
// emission of different days never shares state.
func (w *World) emitDayRaw(day time.Time, fn func(*flowrec.Record)) {
	y, m, d := day.UTC().Date()
	day = time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
	ctx := w.newDayCtx(day)
	for _, sub := range w.population(day) {
		w.emitSubscriberDay(day, sub, ctx, fn)
	}
}

// PopulationOn reports how many lines of each technology exist on day
// (present in the trace, active or not). Exposed for tests and docs;
// the analytics derive their denominators from the records instead.
func (w *World) PopulationOn(day time.Time) (adsl, ftth int) {
	for _, s := range w.population(day) {
		if s.tech == flowrec.TechFTTH {
			ftth++
		} else {
			adsl++
		}
	}
	return
}

// subRand derives the per-(subscriber, day) generator — the root of
// all randomness below the population level.
func (w *World) subRand(day time.Time, sub subscriber) *stats.Rand {
	return stats.NewRand(stats.Mix64(w.seed, uint64(sub.id), uint64(dayIndex(day))))
}
