package simnet

import (
	"sort"
	"time"

	"repro/internal/dpi/btx"
	"repro/internal/dpi/dnsx"
	"repro/internal/dpi/httpx"
	"repro/internal/dpi/quicx"
	"repro/internal/dpi/tlsx"
	"repro/internal/flowrec"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/wire"
)

// PacketOptions tunes the packet-level emitter.
type PacketOptions struct {
	// MaxFlowBytes caps the payload bytes materialised per flow
	// direction. Packetising a 1 GB Netflix session would mean ~700k
	// frames of filler; the cap keeps packet-path runs tractable while
	// exercising every header and handshake byte for real. Byte-exact
	// totals come from the flow fast path. 0 means 96 KiB.
	MaxFlowBytes uint64
}

// EmitDayPackets renders one day of the model as a packet stream, in
// flow start order, and feeds each frame to fn. DNS resolutions are
// emitted before the flows that depend on them, so a downstream
// probe's DN-Hunter resolves names exactly as in deployment.
//
// The stream is generated from the very records the fast path would
// emit, so a probe consuming it reproduces the fast path's protocol
// labels, server names and flow population (bytes are capped per
// PacketOptions).
func (w *World) EmitDayPackets(day time.Time, opt PacketOptions, fn func(probe.Packet)) {
	if opt.MaxFlowBytes == 0 {
		opt.MaxFlowBytes = 96 << 10
	}
	var recs []*flowrec.Record
	w.emitDayRaw(day, func(r *flowrec.Record) {
		c := *r
		recs = append(recs, &c)
	})
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })

	pz := packetizer{opt: opt, fn: fn}
	for i, rec := range recs {
		pz.r = stats.NewRand(stats.Mix64(w.seed, 0x9ac4e7, uint64(dayIndex(day)), uint64(i)))
		pz.flow(rec)
	}
}

// packetizer turns one flow record into frames.
type packetizer struct {
	opt PacketOptions
	fn  func(probe.Packet)
	b   wire.Builder
	r   *stats.Rand
}

// emit clones the builder's buffer (the builder reuses it) and hands
// the frame out.
func (p *packetizer) emit(ts time.Time, raw []byte, err error) {
	if err != nil {
		panic("simnet: packetizer built an unserialisable packet: " + err.Error())
	}
	data := make([]byte, len(raw))
	copy(data, raw)
	p.fn(probe.Packet{TS: ts, Data: data})
}

func (p *packetizer) flow(rec *flowrec.Record) {
	switch {
	case rec.Web == flowrec.WebDNS:
		p.dnsExchange(rec, "cpe-telemetry.example.net", wire.AddrFrom(185, 60, 2, 2))
	case rec.Proto == flowrec.ProtoUDP:
		p.udpFlow(rec)
	default:
		p.tcpFlow(rec)
	}
}

// dnsExchange emits a query/response pair. The response binds name to
// bound for the client — DN-Hunter food.
func (p *packetizer) dnsExchange(rec *flowrec.Record, name string, bound wire.Addr) {
	id := uint16(p.r.Uint64())
	q, err := dnsx.AppendQuery(nil, id, name)
	if err != nil {
		return
	}
	resp, err := dnsx.AppendResponse(nil, id, name, [4]byte(bound), 300)
	if err != nil {
		return
	}
	cli, srv := rec.Client, rec.Server
	cliPort := rec.CliPort
	ip := wire.IPv4{Src: cli, Dst: srv}
	udp := wire.UDP{SrcPort: cliPort, DstPort: 53}
	raw, err := p.b.UDPPacket(&ip, &udp, q)
	p.emit(rec.Start, raw, err)
	ip = wire.IPv4{Src: srv, Dst: cli}
	udp = wire.UDP{SrcPort: 53, DstPort: cliPort}
	raw, err = p.b.UDPPacket(&ip, &udp, resp)
	p.emit(rec.Start.Add(8*time.Millisecond), raw, err)
}

// udpFlow renders QUIC and P2P-over-UDP flows.
func (p *packetizer) udpFlow(rec *flowrec.Record) {
	// A QUIC flow named via DN-Hunter needs its resolution first.
	if rec.Web == flowrec.WebQUIC && rec.ServerName != "" {
		dns := *rec
		dns.Start = rec.Start.Add(-40 * time.Millisecond)
		dns.Server = ispResolver
		p.dnsExchange(&dns, rec.ServerName, rec.Server)
	}

	var firstUp, payloadByte []byte
	switch rec.Web {
	case flowrec.WebQUIC:
		firstUp = quicx.AppendGQUIC(nil, rec.QUICVer, p.r.Uint64(), 1200)
	case flowrec.WebP2P:
		// Alternate between the three UDP dialects of the P2P class.
		switch p.r.Intn(3) {
		case 0:
			firstUp = btx.AppendUTPSyn(nil, uint16(p.r.Uint64()), uint32(p.r.Uint64()))
		case 1:
			firstUp = btx.AppendDHTPing(nil, rand20(p.r))
		default:
			firstUp = append([]byte{0xE3, 0x96}, make([]byte, 30)...)
		}
	default: // gateway chatter: an NTP-shaped datagram
		firstUp = append([]byte{0x1B}, make([]byte, 47)...)
	}
	payloadByte = make([]byte, 1200)

	ts := rec.Start
	ipUp := wire.IPv4{Src: rec.Client, Dst: rec.Server}
	udpUp := wire.UDP{SrcPort: rec.CliPort, DstPort: rec.SrvPort}
	raw, err := p.b.UDPPacket(&ipUp, &udpUp, firstUp)
	p.emit(ts, raw, err)

	down := capBytes(rec.BytesDown, p.opt.MaxFlowBytes)
	n := int(down / 1200)
	if n > 0 {
		gap := rec.Duration / time.Duration(n+1)
		for i := 0; i < n; i++ {
			ts = ts.Add(gap)
			ipDown := wire.IPv4{Src: rec.Server, Dst: rec.Client}
			udpDown := wire.UDP{SrcPort: rec.SrvPort, DstPort: rec.CliPort}
			raw, err := p.b.UDPPacket(&ipDown, &udpDown, payloadByte)
			p.emit(ts, raw, err)
		}
	}
}

// tcpFlow renders a full TCP conversation: handshake, first client
// flight carrying the protocol's signature bytes, server data, ACKs,
// orderly teardown.
func (p *packetizer) tcpFlow(rec *flowrec.Record) {
	rtt := rec.RTTMin
	if rtt <= 0 {
		rtt = 20 * time.Millisecond
	}
	seqC, seqS := uint32(p.r.Uint64()|1), uint32(p.r.Uint64()|1)
	ts := rec.Start

	sendC := func(at time.Time, flags uint8, payload []byte) {
		ip := wire.IPv4{Src: rec.Client, Dst: rec.Server}
		tcp := wire.TCP{SrcPort: rec.CliPort, DstPort: rec.SrvPort, Seq: seqC, Ack: seqS, Flags: flags}
		raw, err := p.b.TCPPacket(&ip, &tcp, payload)
		p.emit(at, raw, err)
		seqC += uint32(len(payload))
		if flags&(wire.TCPSyn|wire.TCPFin) != 0 {
			seqC++
		}
	}
	sendS := func(at time.Time, flags uint8, payload []byte) {
		ip := wire.IPv4{Src: rec.Server, Dst: rec.Client}
		tcp := wire.TCP{SrcPort: rec.SrvPort, DstPort: rec.CliPort, Seq: seqS, Ack: seqC, Flags: flags}
		raw, err := p.b.TCPPacket(&ip, &tcp, payload)
		p.emit(at, raw, err)
		seqS += uint32(len(payload))
		if flags&(wire.TCPSyn|wire.TCPFin) != 0 {
			seqS++
		}
	}

	// Handshake; SYN→SYNACK spacing carries the flow's RTT.
	sendC(ts, wire.TCPSyn, nil)
	sendS(ts.Add(rtt), wire.TCPSyn|wire.TCPAck, nil)
	ts = ts.Add(rtt + time.Millisecond)

	// First client flight: the DPI signature. Long hellos split
	// across two segments about half the time, as on a real link —
	// the probe's reassembler puts them back together.
	ff := p.firstFlight(rec)
	if len(ff) > 150 && rec.CliPort%2 == 0 {
		cut := 80 + int(rec.CliPort%40)
		sendC(ts, wire.TCPAck, ff[:cut])
		sendC(ts.Add(300*time.Microsecond), wire.TCPAck|wire.TCPPsh, ff[cut:])
	} else {
		sendC(ts, wire.TCPAck|wire.TCPPsh, ff)
	}
	sendS(ts.Add(rtt), wire.TCPAck, nil) // pure ACK: resolves the RTT sample
	ts = ts.Add(rtt + time.Millisecond)

	// TLS-family sessions carry the server's answer: the ServerHello
	// with the selected ALPN, which the probe treats as authoritative.
	switch rec.Web {
	case flowrec.WebTLS, flowrec.WebSPDY, flowrec.WebHTTP2:
		sh := tlsx.AppendServerHello(nil, 0, rec.ALPN)
		sendS(ts.Add(time.Millisecond), wire.TCPAck|wire.TCPPsh, sh)
		ts = ts.Add(2 * time.Millisecond)
	}

	// Server data, client ACK every other segment.
	down := capBytes(rec.BytesDown, p.opt.MaxFlowBytes)
	n := int(down / 1400)
	if n < 1 {
		n = 1
	}
	seg := make([]byte, 1400)
	gap := rec.Duration / time.Duration(n+2)
	if gap > time.Second {
		gap = time.Second
	}
	for i := 0; i < n; i++ {
		ts = ts.Add(gap)
		sendS(ts, wire.TCPAck, seg)
		if i%2 == 1 {
			sendC(ts.Add(200*time.Microsecond), wire.TCPAck, nil)
		}
	}

	// Client upload beyond the first flight, if meaningful.
	up := capBytes(rec.BytesUp, p.opt.MaxFlowBytes)
	for sent := uint64(0); sent+1400 < up; sent += 1400 {
		ts = ts.Add(gap / 2)
		sendC(ts, wire.TCPAck, seg)
		sendS(ts.Add(rtt), wire.TCPAck, nil)
	}

	// Teardown.
	sendC(ts.Add(gap), wire.TCPFin|wire.TCPAck, nil)
	sendS(ts.Add(gap+rtt), wire.TCPFin|wire.TCPAck, nil)
}

// firstFlight builds the client bytes that make the probe label the
// flow the way the record says.
func (p *packetizer) firstFlight(rec *flowrec.Record) []byte {
	switch rec.Web {
	case flowrec.WebHTTP:
		return httpx.AppendRequest(nil, "GET", rec.ServerName, "/", "edge-sim/1.0")
	case flowrec.WebP2P:
		return btx.AppendHandshake(nil, rand20(p.r), rand20(p.r))
	case flowrec.WebFBZero:
		return tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: rec.ServerName, FBZero: true})
	case flowrec.WebHTTP2:
		return tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: rec.ServerName, ALPN: []string{"h2", "http/1.1"}})
	case flowrec.WebSPDY:
		return tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: rec.ServerName, ALPN: []string{"spdy/3.1", "http/1.1"}})
	case flowrec.WebTLS:
		// The record may be a pre-epoch SPDY flow relabelled TLS; the
		// ALPN field still says. Reproduce the real bytes: the wire
		// carried SPDY either way.
		if rec.ALPN != "" {
			return tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: rec.ServerName, ALPN: []string{rec.ALPN}})
		}
		return tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: rec.ServerName})
	default:
		return []byte("\x00\x01\x02\x03 opaque application bytes")
	}
}

func capBytes(v, cap uint64) uint64 {
	if v > cap {
		return cap
	}
	return v
}

// rand20 draws 20 deterministic bytes (info-hashes, node ids).
func rand20(r *stats.Rand) [20]byte {
	var out [20]byte
	for i := 0; i < 20; i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < 20; j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	return out
}
