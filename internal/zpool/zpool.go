// Package zpool pools compression codecs and scratch buffers for the
// hot read/write paths. A gzip or flate coder carries large internal
// state (32–256 KiB of window and Huffman tables); constructing one
// per file — or worse, per block — is what used to dominate the
// allocation profile of a five-year lake scan. Every pool here hands
// back a Reset coder bound to the caller's stream, and the matching
// Put returns it for the next caller. Putting a coder back while its
// underlying stream is still in use is a caller bug; the pools never
// retain the stream, only the coder.
package zpool

import (
	"compress/flate"
	"compress/gzip"
	"io"
	"sync"
)

// Gzip writer pools, one per compression level actually used in the
// tree: BestSpeed for day logs (write throughput bound), the default
// level for the gob caches (small files, written once per day).
var (
	gzWriterSpeed   = sync.Pool{New: func() any { w, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed); return w }}
	gzWriterDefault = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}
	gzReaders       sync.Pool // *gzip.Reader, nil-state tolerated via Reset
	flateWriters    = sync.Pool{New: func() any { w, _ := flate.NewWriter(io.Discard, flate.BestSpeed); return w }}
	flateReaders    = sync.Pool{New: func() any { return flate.NewReader(nil) }}
)

// GzipWriterSpeed returns a pooled gzip writer at BestSpeed, reset to
// write to w. Return it with PutGzipWriterSpeed after Close.
func GzipWriterSpeed(w io.Writer) *gzip.Writer {
	gz := gzWriterSpeed.Get().(*gzip.Writer)
	gz.Reset(w)
	return gz
}

// PutGzipWriterSpeed returns a BestSpeed writer to the pool. The
// caller must have Closed (or abandoned) it first.
func PutGzipWriterSpeed(gz *gzip.Writer) {
	if gz != nil {
		gzWriterSpeed.Put(gz)
	}
}

// GzipWriter returns a pooled default-level gzip writer reset to w.
// Return it with PutGzipWriter after Close.
func GzipWriter(w io.Writer) *gzip.Writer {
	gz := gzWriterDefault.Get().(*gzip.Writer)
	gz.Reset(w)
	return gz
}

// PutGzipWriter returns a default-level writer to the pool.
func PutGzipWriter(gz *gzip.Writer) {
	if gz != nil {
		gzWriterDefault.Put(gz)
	}
}

// GzipReader returns a pooled gzip reader reset onto r. The header is
// read immediately, so the error return mirrors gzip.NewReader. Return
// the reader with PutGzipReader; Close it first when the trailer
// checksum matters.
func GzipReader(r io.Reader) (*gzip.Reader, error) {
	if got := gzReaders.Get(); got != nil {
		gz := got.(*gzip.Reader)
		if err := gz.Reset(r); err != nil {
			gzReaders.Put(gz)
			return nil, err
		}
		return gz, nil
	}
	return gzip.NewReader(r)
}

// PutGzipReader returns a gzip reader to the pool.
func PutGzipReader(gz *gzip.Reader) {
	if gz != nil {
		gzReaders.Put(gz)
	}
}

// FlateWriter returns a pooled raw-deflate writer at BestSpeed, reset
// to w. Return it with PutFlateWriter after Close/Flush.
func FlateWriter(w io.Writer) *flate.Writer {
	fw := flateWriters.Get().(*flate.Writer)
	fw.Reset(w)
	return fw
}

// PutFlateWriter returns a flate writer to the pool.
func PutFlateWriter(fw *flate.Writer) {
	if fw != nil {
		flateWriters.Put(fw)
	}
}

// FlateReader returns a pooled raw-deflate reader reset onto r. dict
// is the preset dictionary (nil for none). Return it with
// PutFlateReader.
func FlateReader(r io.Reader) io.ReadCloser {
	fr := flateReaders.Get().(io.ReadCloser)
	// flate.NewReader's concrete type always implements Resetter.
	fr.(flate.Resetter).Reset(r, nil)
	return fr
}

// PutFlateReader returns a flate reader to the pool.
func PutFlateReader(fr io.ReadCloser) {
	if fr != nil {
		flateReaders.Put(fr)
	}
}

// bufPool recycles byte scratch buffers (block payloads, compressed
// column bodies). Buffers are pooled as *[]byte to avoid the
// interface-boxing allocation sync.Pool would otherwise charge per
// Put.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// Buf returns a pooled byte slice with length n (contents undefined).
// Return it with PutBuf.
func Buf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// PutBuf returns a scratch buffer to the pool. Oversized buffers
// (>16 MiB) are dropped so one huge column cannot pin memory forever.
func PutBuf(bp *[]byte) {
	if bp == nil || cap(*bp) > 16<<20 {
		return
	}
	bufPool.Put(bp)
}
