package zpool

import (
	"bytes"
	"compress/gzip"
	"io"
	"sync"
	"testing"
)

// Round-trip through every pooled codec, twice, so the second pass
// exercises the Reset path on a recycled coder.
func TestGzipPoolRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte("five years at the edge "), 100)
	for pass := 0; pass < 2; pass++ {
		var buf bytes.Buffer
		gz := GzipWriterSpeed(&buf)
		if _, err := gz.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := gz.Close(); err != nil {
			t.Fatal(err)
		}
		PutGzipWriterSpeed(gz)

		gr, err := GzipReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(gr)
		if err != nil {
			t.Fatal(err)
		}
		if err := gr.Close(); err != nil {
			t.Fatal(err)
		}
		PutGzipReader(gr)
		if !bytes.Equal(got, payload) {
			t.Fatalf("pass %d: round-trip mismatch", pass)
		}
	}
}

func TestFlatePoolRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{1, 2, 3, 4, 250, 251}, 500)
	for pass := 0; pass < 2; pass++ {
		var buf bytes.Buffer
		fw := FlateWriter(&buf)
		if _, err := fw.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		PutFlateWriter(fw)

		fr := FlateReader(&buf)
		got, err := io.ReadAll(fr)
		if err != nil {
			t.Fatal(err)
		}
		PutFlateReader(fr)
		if !bytes.Equal(got, payload) {
			t.Fatalf("pass %d: round-trip mismatch", pass)
		}
	}
}

// GzipReader on a non-gzip stream must fail cleanly and keep the
// pooled coder usable for the next caller.
func TestGzipReaderBadHeader(t *testing.T) {
	if _, err := GzipReader(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("expected a header error")
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write([]byte("ok"))
	gz.Close()
	gr, err := GzipReader(&buf)
	if err != nil {
		t.Fatalf("pool poisoned by bad header: %v", err)
	}
	if got, _ := io.ReadAll(gr); string(got) != "ok" {
		t.Fatalf("read %q, want %q", got, "ok")
	}
	PutGzipReader(gr)
}

// Concurrent acquire/release under -race: the pools must never hand
// one coder to two goroutines.
func TestPoolsConcurrent(t *testing.T) {
	payload := bytes.Repeat([]byte("abc123"), 200)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				gz := GzipWriter(&buf)
				gz.Write(payload)
				gz.Close()
				PutGzipWriter(gz)
				gr, err := GzipReader(&buf)
				if err != nil {
					t.Error(err)
					return
				}
				got, err := io.ReadAll(gr)
				if err != nil || !bytes.Equal(got, payload) {
					t.Errorf("concurrent round-trip mismatch: %v", err)
					return
				}
				PutGzipReader(gr)

				bp := Buf(len(payload))
				copy(*bp, payload)
				PutBuf(bp)
			}
		}()
	}
	wg.Wait()
}
