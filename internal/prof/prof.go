// Package prof wires the standard -cpuprofile/-memprofile flags into
// the binaries, so perf work on the pipeline starts from pprof data
// instead of guesses.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) file
// paths and returns a stop function to run at exit. The CPU profile
// streams to its file immediately; the heap profile is an allocation
// snapshot written at stop time, after a final GC, so it reflects
// live-heap shape rather than collection timing.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: closing cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: creating mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: writing mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
