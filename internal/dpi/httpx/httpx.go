// Package httpx parses clear-text HTTP/1.x traffic deeply enough for
// passive classification: the request line and the Host header from
// client payloads, and the status line from server payloads. Per the
// paper (section 2.1), the Host header is one of the three sources of
// server names used to map flows to services.
package httpx

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Errors returned by the parsers.
var (
	ErrNotHTTP   = errors.New("httpx: not HTTP/1.x")
	ErrTruncated = errors.New("httpx: truncated message head")
)

// methods recognised in request lines, longest first where it matters.
var methods = []string{"GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "CONNECT", "PATCH", "TRACE"}

// Request holds the fields extracted from an HTTP/1.x request head.
type Request struct {
	Method  string
	Target  string // request-target as sent (origin-form usually)
	Proto   string // "HTTP/1.1"
	Host    string // Host header value, lower-cased, port stripped
	Agent   string // User-Agent value, verbatim
	HeadLen int    // bytes consumed up to and including the blank line
}

// Response holds the fields extracted from an HTTP/1.x status line.
type Response struct {
	Proto      string
	StatusCode int
	ContentLen int64 // -1 when absent
}

// SniffRequest reports whether data plausibly starts an HTTP/1.x
// request (used to pick a parser before committing).
func SniffRequest(data []byte) bool {
	for _, m := range methods {
		if len(data) > len(m) && string(data[:len(m)]) == m && data[len(m)] == ' ' {
			return true
		}
	}
	return false
}

// SniffResponse reports whether data plausibly starts an HTTP/1.x
// status line.
func SniffResponse(data []byte) bool {
	return bytes.HasPrefix(data, []byte("HTTP/1.")) && len(data) > 12
}

// ParseRequest parses a request head from the start of a client
// stream. Headers after the blank line terminator — or after the end
// of the capture — are ignored; like the TLS parser, it extracts what
// the captured bytes contain. It fails only when the bytes are not an
// HTTP request at all.
func ParseRequest(data []byte) (*Request, error) {
	if !SniffRequest(data) {
		return nil, ErrNotHTTP
	}
	lineEnd := bytes.IndexByte(data, '\n')
	if lineEnd < 0 {
		return nil, fmt.Errorf("%w: no request line terminator", ErrTruncated)
	}
	line := strings.TrimRight(string(data[:lineEnd]), "\r")
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("%w: request line %q", ErrNotHTTP, line)
	}
	req := &Request{Method: parts[0], Target: parts[1], Proto: parts[2]}

	rest := data[lineEnd+1:]
	consumed := lineEnd + 1
	for {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			req.HeadLen = consumed + len(rest)
			return req, nil // truncated inside headers: keep what we got
		}
		hline := strings.TrimRight(string(rest[:nl]), "\r")
		rest = rest[nl+1:]
		consumed += nl + 1
		if hline == "" {
			req.HeadLen = consumed
			return req, nil
		}
		name, value, ok := strings.Cut(hline, ":")
		if !ok {
			continue // tolerate junk header lines
		}
		value = strings.TrimSpace(value)
		switch {
		case strings.EqualFold(name, "Host"):
			req.Host = CanonicalHost(value)
		case strings.EqualFold(name, "User-Agent"):
			req.Agent = value
		}
	}
}

// ParseResponse parses a status line and scans the head for
// Content-Length.
func ParseResponse(data []byte) (*Response, error) {
	if !SniffResponse(data) {
		return nil, ErrNotHTTP
	}
	lineEnd := bytes.IndexByte(data, '\n')
	if lineEnd < 0 {
		return nil, fmt.Errorf("%w: no status line terminator", ErrTruncated)
	}
	line := strings.TrimRight(string(data[:lineEnd]), "\r")
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 {
		return nil, fmt.Errorf("%w: status line %q", ErrNotHTTP, line)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil || code < 100 || code > 599 {
		return nil, fmt.Errorf("%w: status %q", ErrNotHTTP, parts[1])
	}
	resp := &Response{Proto: parts[0], StatusCode: code, ContentLen: -1}
	rest := data[lineEnd+1:]
	for {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return resp, nil
		}
		hline := strings.TrimRight(string(rest[:nl]), "\r")
		rest = rest[nl+1:]
		if hline == "" {
			return resp, nil
		}
		name, value, ok := strings.Cut(hline, ":")
		if ok && strings.EqualFold(name, "Content-Length") {
			if n, err := strconv.ParseInt(strings.TrimSpace(value), 10, 64); err == nil {
				resp.ContentLen = n
			}
		}
	}
}

// CanonicalHost lower-cases a Host header value and strips any port,
// so "WWW.YouTube.COM:80" and "www.youtube.com" classify identically.
func CanonicalHost(host string) string {
	host = strings.TrimSpace(host)
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host[i:], "]") {
		// Reject only when everything after ':' is digits (a port).
		port := host[i+1:]
		isPort := port != ""
		for _, r := range port {
			if r < '0' || r > '9' {
				isPort = false
				break
			}
		}
		if isPort {
			host = host[:i]
		}
	}
	return strings.ToLower(host)
}

// AppendRequest builds a minimal HTTP/1.1 request head for the traffic
// simulator and appends it to dst.
func AppendRequest(dst []byte, method, host, target, agent string) []byte {
	if method == "" {
		method = "GET"
	}
	if target == "" {
		target = "/"
	}
	dst = append(dst, method...)
	dst = append(dst, ' ')
	dst = append(dst, target...)
	dst = append(dst, " HTTP/1.1\r\nHost: "...)
	dst = append(dst, host...)
	dst = append(dst, "\r\n"...)
	if agent != "" {
		dst = append(dst, "User-Agent: "...)
		dst = append(dst, agent...)
		dst = append(dst, "\r\n"...)
	}
	dst = append(dst, "Accept: */*\r\nConnection: keep-alive\r\n\r\n"...)
	return dst
}

// AppendResponse builds a minimal HTTP/1.1 response head and appends
// it to dst.
func AppendResponse(dst []byte, code int, contentLen int64) []byte {
	dst = append(dst, "HTTP/1.1 "...)
	dst = strconv.AppendInt(dst, int64(code), 10)
	dst = append(dst, ' ')
	dst = append(dst, statusText(code)...)
	dst = append(dst, "\r\n"...)
	if contentLen >= 0 {
		dst = append(dst, "Content-Length: "...)
		dst = strconv.AppendInt(dst, contentLen, 10)
		dst = append(dst, "\r\n"...)
	}
	dst = append(dst, "Content-Type: application/octet-stream\r\n\r\n"...)
	return dst
}

// statusText returns a reason phrase for the handful of codes the
// simulator emits.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 204:
		return "No Content"
	case 206:
		return "Partial Content"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 304:
		return "Not Modified"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Status"
	}
}
