package httpx

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRequestBasics(t *testing.T) {
	raw := AppendRequest(nil, "GET", "www.Facebook.com:80", "/home.php", "Mozilla/5.0")
	req, err := ParseRequest(raw)
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if req.Method != "GET" {
		t.Errorf("method = %q", req.Method)
	}
	if req.Host != "www.facebook.com" {
		t.Errorf("host = %q, want lower-cased, port-stripped", req.Host)
	}
	if req.Target != "/home.php" {
		t.Errorf("target = %q", req.Target)
	}
	if req.Proto != "HTTP/1.1" {
		t.Errorf("proto = %q", req.Proto)
	}
	if req.Agent != "Mozilla/5.0" {
		t.Errorf("agent = %q", req.Agent)
	}
	if req.HeadLen != len(raw) {
		t.Errorf("HeadLen = %d, want %d", req.HeadLen, len(raw))
	}
}

func TestParseRequestAllMethods(t *testing.T) {
	for _, m := range []string{"GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "CONNECT", "PATCH", "TRACE"} {
		raw := AppendRequest(nil, m, "example.com", "/", "")
		req, err := ParseRequest(raw)
		if err != nil {
			t.Errorf("%s: %v", m, err)
			continue
		}
		if req.Method != m {
			t.Errorf("method = %q, want %q", req.Method, m)
		}
	}
}

func TestParseRequestRejectsNonHTTP(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("\x16\x03\x01\x00\x10"),
		[]byte("NOTAMETHOD / HTTP/1.1\r\n"),
		[]byte("GETX / HTTP/1.1\r\n"),
	}
	for i, c := range cases {
		if _, err := ParseRequest(c); !errors.Is(err, ErrNotHTTP) {
			t.Errorf("case %d: err = %v, want ErrNotHTTP", i, err)
		}
	}
}

func TestParseRequestTruncatedInHeaders(t *testing.T) {
	raw := AppendRequest(nil, "GET", "video.google.com", "/watch", "app/1.0")
	// Cut after the Host header line but before the blank line.
	hostEnd := strings.Index(string(raw), "google.com\r\n") + len("google.com\r\n")
	req, err := ParseRequest(raw[:hostEnd])
	if err != nil {
		t.Fatalf("truncated parse failed: %v", err)
	}
	if req.Host != "video.google.com" {
		t.Errorf("host = %q", req.Host)
	}
	if req.Agent != "" {
		t.Errorf("agent = %q recovered from cut capture", req.Agent)
	}
}

func TestParseRequestNoLineTerminator(t *testing.T) {
	if _, err := ParseRequest([]byte("GET / HTTP/1.1")); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestParseResponse(t *testing.T) {
	raw := AppendResponse(nil, 206, 1048576)
	resp, err := ParseResponse(raw)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	if resp.StatusCode != 206 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if resp.ContentLen != 1048576 {
		t.Errorf("content length = %d", resp.ContentLen)
	}
}

func TestParseResponseNoContentLength(t *testing.T) {
	resp, err := ParseResponse([]byte("HTTP/1.1 304 Not Modified\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.ContentLen != -1 {
		t.Errorf("content length = %d, want -1", resp.ContentLen)
	}
}

func TestParseResponseRejects(t *testing.T) {
	cases := []string{"", "HTTP/1.1 XYZ\r\n\r\n", "HTTP/1.1 999 Bogus but long enough\r\n\r\n", "SIP/2.0 200 OK\r\n\r\n"}
	for i, c := range cases {
		if _, err := ParseResponse([]byte(c)); !errors.Is(err, ErrNotHTTP) {
			t.Errorf("case %d: err = %v, want ErrNotHTTP", i, err)
		}
	}
}

func TestCanonicalHost(t *testing.T) {
	cases := []struct{ in, want string }{
		{"WWW.YouTube.COM", "www.youtube.com"},
		{"www.youtube.com:8080", "www.youtube.com"},
		{" netflix.com ", "netflix.com"},
		{"host:notaport", "host:notaport"},
		{"192.168.0.1:80", "192.168.0.1"},
	}
	for _, c := range cases {
		if got := CanonicalHost(c.in); got != c.want {
			t.Errorf("CanonicalHost(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSniffs(t *testing.T) {
	if !SniffRequest([]byte("POST /upload HTTP/1.1\r\n")) {
		t.Error("SniffRequest rejected POST")
	}
	if SniffRequest([]byte("HTTP/1.1 200 OK\r\n")) {
		t.Error("SniffRequest accepted a response")
	}
	if !SniffResponse([]byte("HTTP/1.1 200 OK\r\n")) {
		t.Error("SniffResponse rejected a response")
	}
	if SniffResponse([]byte("GET / HTTP/1.1\r\n")) {
		t.Error("SniffResponse accepted a request")
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(hostSeed uint16, pathSeed uint8) bool {
		host := "h" + strings.Repeat("x", int(hostSeed%20)) + ".example.org"
		target := "/" + strings.Repeat("p", int(pathSeed%30))
		raw := AppendRequest(nil, "GET", host, target, "probe-test")
		req, err := ParseRequest(raw)
		if err != nil {
			return false
		}
		return req.Host == host && req.Target == target && req.Agent == "probe-test"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParserNeverPanicsOnFuzzedInput(t *testing.T) {
	f := func(data []byte) bool {
		ParseRequest(data)
		ParseResponse(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseRequest(b *testing.B) {
	raw := AppendRequest(nil, "GET", "r3---sn-hpa7kn7s.googlevideo.com", "/videoplayback?id=abc", "Mozilla/5.0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRequest(raw); err != nil {
			b.Fatal(err)
		}
	}
}
