package btx

import (
	"errors"
	"testing"
	"testing/quick"
)

func ids() (ih, pid [20]byte) {
	for i := range ih {
		ih[i] = byte(i)
		pid[i] = byte(0x40 + i)
	}
	return
}

func TestHandshakeRoundTrip(t *testing.T) {
	ih, pid := ids()
	raw := AppendHandshake(nil, ih, pid)
	if len(raw) != HandshakeLen {
		t.Fatalf("handshake = %d bytes, want %d", len(raw), HandshakeLen)
	}
	if !SniffHandshake(raw) {
		t.Fatal("Sniff rejected own handshake")
	}
	h, err := ParseHandshake(raw)
	if err != nil {
		t.Fatal(err)
	}
	if h.InfoHash != ih || h.PeerID != pid {
		t.Errorf("ids corrupted: %x / %x", h.InfoHash, h.PeerID)
	}
	if !h.SupportsDHT() || !h.SupportsExtensions() || !h.SupportsFast() {
		t.Errorf("capability bits lost: %x", h.Reserved)
	}
}

func TestHandshakeTruncated(t *testing.T) {
	ih, pid := ids()
	raw := AppendHandshake(nil, ih, pid)
	if _, err := ParseHandshake(raw[:30]); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
	// Sniffable prefix, though.
	if !SniffHandshake(raw[:25]) {
		t.Error("Sniff should work on a labelled prefix")
	}
}

func TestHandshakeRejects(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("GET / HTTP/1.1\r\n"),
		append([]byte{18}, []byte("BitTorrent protocol")...), // wrong length byte
		[]byte{19, 'B', 'i', 't'},
	}
	for i, c := range cases {
		if SniffHandshake(c) {
			t.Errorf("case %d sniffed", i)
		}
		if _, err := ParseHandshake(c); err == nil {
			t.Errorf("case %d parsed", i)
		}
	}
}

func TestClassifyUDP(t *testing.T) {
	var nid [20]byte
	cases := []struct {
		name string
		data []byte
		port uint16
		want UDPKind
	}{
		{"dht ping", AppendDHTPing(nil, nid), 6881, UDPDHT},
		{"utp syn", AppendUTPSyn(nil, 7, 1000), 51413, UDPuTP},
		{"emule", []byte{0xE3, 0x96, 1, 2, 3}, 4672, UDPeMule},
		{"kad2", []byte{0xC5, 0x01, 1, 2, 3}, 4672, UDPeMule},
		{"dns-ish on 53", AppendDHTPing(nil, nid), 53, UDPNone},
		{"ntp", append([]byte{0x1B}, make([]byte, 47)...), 123, UDPNone},
		{"random", []byte{0x99, 0x88, 0x77}, 40000, UDPNone},
		{"short", []byte{0xE3}, 4672, UDPNone},
	}
	for _, c := range cases {
		if got := ClassifyUDP(c.data, c.port); got != c.want {
			t.Errorf("%s: ClassifyUDP = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestUTPValidation(t *testing.T) {
	syn := AppendUTPSyn(nil, 1, 2)
	if !isUTP(syn) {
		t.Fatal("own SYN rejected")
	}
	bad := append([]byte(nil), syn...)
	bad[0] = 5<<4 | 1 // unknown type
	if isUTP(bad) {
		t.Error("type 5 accepted")
	}
	bad[0] = 4<<4 | 2 // wrong version
	if isUTP(bad) {
		t.Error("version 2 accepted")
	}
	if isUTP(syn[:10]) {
		t.Error("short header accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[UDPKind]string{UDPuTP: "utp", UDPDHT: "dht", UDPeMule: "emule", UDPNone: "none"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestFuzzNoPanic(t *testing.T) {
	f := func(data []byte, port uint16) bool {
		SniffHandshake(data)
		ParseHandshake(data)
		ClassifyUDP(data, port)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
