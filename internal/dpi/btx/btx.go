// Package btx recognises peer-to-peer file-sharing traffic: the
// BitTorrent TCP handshake (with info-hash and extension bits), the
// uTP transport header, bencoded DHT datagrams, and the eMule/ed2k
// UDP framing. Together these are the "Bittorrent, eMule and variants"
// of the paper's Peer-To-Peer class (section 4.2).
package btx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// protocolString is the BitTorrent wire identifier.
const protocolString = "BitTorrent protocol"

// HandshakeLen is the fixed BitTorrent handshake length.
const HandshakeLen = 1 + len(protocolString) + 8 + 20 + 20

// Errors returned by the parser.
var (
	ErrNotBitTorrent = errors.New("btx: not a BitTorrent handshake")
	ErrTruncated     = errors.New("btx: truncated handshake")
)

// Handshake is a parsed BitTorrent handshake.
type Handshake struct {
	Reserved [8]byte
	InfoHash [20]byte
	PeerID   [20]byte
}

// Reserved-bit capabilities (observed from the least significant end
// of the reserved block, per BEP conventions).
const (
	capDHT      = 0x01 // reserved[7] bit 0: BEP 5, DHT
	capExtProto = 0x10 // reserved[5] bit 4: BEP 10, extension protocol
	capFast     = 0x04 // reserved[7] bit 2: BEP 6, fast extension
)

// SupportsDHT reports the DHT reserved bit.
func (h *Handshake) SupportsDHT() bool { return h.Reserved[7]&capDHT != 0 }

// SupportsExtensions reports the BEP 10 reserved bit.
func (h *Handshake) SupportsExtensions() bool { return h.Reserved[5]&capExtProto != 0 }

// SupportsFast reports the fast-extension reserved bit.
func (h *Handshake) SupportsFast() bool { return h.Reserved[7]&capFast != 0 }

// SniffHandshake reports whether data plausibly begins a BitTorrent
// handshake (enough for flow labelling on truncated captures).
func SniffHandshake(data []byte) bool {
	if len(data) < 1+len(protocolString) {
		return false
	}
	return data[0] == 19 && string(data[1:1+len(protocolString)]) == protocolString
}

// ParseHandshake parses a complete handshake.
func ParseHandshake(data []byte) (*Handshake, error) {
	if !SniffHandshake(data) {
		return nil, ErrNotBitTorrent
	}
	if len(data) < HandshakeLen {
		return nil, fmt.Errorf("%w: %d of %d bytes", ErrTruncated, len(data), HandshakeLen)
	}
	h := &Handshake{}
	off := 1 + len(protocolString)
	copy(h.Reserved[:], data[off:off+8])
	copy(h.InfoHash[:], data[off+8:off+28])
	copy(h.PeerID[:], data[off+28:off+48])
	return h, nil
}

// AppendHandshake builds a handshake announcing DHT + extension
// support, for the traffic simulator.
func AppendHandshake(dst []byte, infoHash, peerID [20]byte) []byte {
	dst = append(dst, 19)
	dst = append(dst, protocolString...)
	var reserved [8]byte
	reserved[5] |= capExtProto
	reserved[7] |= capDHT | capFast
	dst = append(dst, reserved[:]...)
	dst = append(dst, infoHash[:]...)
	return append(dst, peerID[:]...)
}

// --- UDP dialects ----------------------------------------------------------

// UDPKind labels what a P2P UDP datagram is.
type UDPKind uint8

// UDP dialects.
const (
	UDPNone  UDPKind = iota
	UDPuTP           // BEP 29 micro transport protocol
	UDPDHT           // bencoded Kademlia RPC
	UDPeMule         // ed2k/KAD framing (0xE3 / 0xC5 opcodes)
)

// String names the dialect.
func (k UDPKind) String() string {
	switch k {
	case UDPuTP:
		return "utp"
	case UDPDHT:
		return "dht"
	case UDPeMule:
		return "emule"
	default:
		return "none"
	}
}

// utp header: type (4 bits) | version (4 bits), extension, conn id,
// timestamps, wnd, seq, ack — 20 bytes. Version is always 1; types
// run 0 (data) through 4 (syn).
const utpHeaderLen = 20

// ClassifyUDP identifies the P2P dialect of a UDP payload, or UDPNone.
// Port is the server-side port; well-known service ports never carry
// P2P (the QUIC/DNS parsers own them).
func ClassifyUDP(payload []byte, port uint16) UDPKind {
	if port < 1024 {
		return UDPNone
	}
	switch {
	case isDHT(payload):
		return UDPDHT
	case isUTP(payload):
		return UDPuTP
	case iseMule(payload):
		return UDPeMule
	default:
		return UDPNone
	}
}

// isDHT matches the bencoded dictionary a mainline-DHT RPC starts
// with: "d1:" (e.g. d1:ad2:id20:...) or "d2:" variants.
func isDHT(p []byte) bool {
	if len(p) < 4 || p[0] != 'd' {
		return false
	}
	return (p[1] == '1' || p[1] == '2') && p[2] == ':' ||
		bytes.HasPrefix(p, []byte("d4:"))
}

// isUTP validates a uTP header: known type, version 1, sane extension.
func isUTP(p []byte) bool {
	if len(p) < utpHeaderLen {
		return false
	}
	typ, ver := p[0]>>4, p[0]&0x0F
	if ver != 1 || typ > 4 {
		return false
	}
	ext := p[1]
	return ext == 0 || ext == 1 || ext == 2
}

// iseMule matches the ed2k/KAD UDP opcodes.
func iseMule(p []byte) bool {
	if len(p) < 2 {
		return false
	}
	return p[0] == 0xE3 || p[0] == 0xC5 || p[0] == 0xD4
}

// AppendUTPSyn builds a uTP ST_SYN datagram for the simulator.
func AppendUTPSyn(dst []byte, connID uint16, tsMicros uint32) []byte {
	var hdr [utpHeaderLen]byte
	hdr[0] = 4<<4 | 1 // ST_SYN, version 1
	binary.BigEndian.PutUint16(hdr[2:4], connID)
	binary.BigEndian.PutUint32(hdr[4:8], tsMicros)
	binary.BigEndian.PutUint32(hdr[12:16], 0x00040000) // wnd
	binary.BigEndian.PutUint16(hdr[16:18], 1)          // seq
	return append(dst, hdr[:]...)
}

// AppendDHTPing builds a mainline-DHT ping query.
func AppendDHTPing(dst []byte, nodeID [20]byte) []byte {
	dst = append(dst, "d1:ad2:id20:"...)
	dst = append(dst, nodeID[:]...)
	return append(dst, "e1:q4:ping1:t2:aa1:y1:qe"...)
}
