// Package dpi_test hosts the native fuzz targets for every parser that
// faces raw wire bytes. `go test` runs the seed corpus; `go test
// -fuzz=FuzzX ./internal/dpi` explores further. None of the parsers may
// panic on any input — a passive probe dies for nobody.
package dpi_test

import (
	"testing"

	"repro/internal/dpi/btx"
	"repro/internal/dpi/dnsx"
	"repro/internal/dpi/httpx"
	"repro/internal/dpi/quicx"
	"repro/internal/dpi/tlsx"
	"repro/internal/wire"
)

func FuzzTLSClientHello(f *testing.F) {
	f.Add(tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: "a.example", ALPN: []string{"h2"}}))
	f.Add(tlsx.AppendClientHello(nil, tlsx.HelloSpec{FBZero: true}))
	f.Add([]byte{0x16, 0x03, 0x01, 0x00, 0x05, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		tlsx.Sniff(data)
		if h, err := tlsx.ParseClientHello(data); err == nil && h == nil {
			t.Fatal("nil hello without error")
		}
		tlsx.ParseServerHello(data)
		tlsx.RecordLen(data)
	})
}

func FuzzDNSDecode(f *testing.F) {
	q, _ := dnsx.AppendQuery(nil, 1, "www.example.com")
	f.Add(q)
	r, _ := dnsx.AppendResponse(nil, 2, "cdn.example.net", [4]byte{1, 2, 3, 4}, 60)
	f.Add(r)
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := dnsx.Decode(data); err == nil {
			m.QueryName()
			m.ARecords()
		}
	})
}

func FuzzHTTPRequest(f *testing.F) {
	f.Add(httpx.AppendRequest(nil, "GET", "example.com", "/", "ua"))
	f.Add(httpx.AppendResponse(nil, 200, 10))
	f.Add([]byte("POST /x HTTP/1.0\r\nHost:\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		httpx.ParseRequest(data)
		httpx.ParseResponse(data)
		httpx.SniffRequest(data)
		httpx.SniffResponse(data)
	})
}

func FuzzQUICHeader(f *testing.F) {
	f.Add(quicx.AppendGQUIC(nil, "Q039", 7, 32))
	f.Add(quicx.AppendIETF(nil, 1, 7, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		quicx.Sniff(data)
		quicx.Parse(data)
	})
}

func FuzzBitTorrent(f *testing.F) {
	var id [20]byte
	f.Add(btx.AppendHandshake(nil, id, id), uint16(6881))
	f.Add(btx.AppendDHTPing(nil, id), uint16(6881))
	f.Add(btx.AppendUTPSyn(nil, 1, 2), uint16(51413))
	f.Fuzz(func(t *testing.T, data []byte, port uint16) {
		btx.SniffHandshake(data)
		btx.ParseHandshake(data)
		btx.ClassifyUDP(data, port)
	})
}

func FuzzLayerParser(f *testing.F) {
	var b wire.Builder
	ip := wire.IPv4{Src: wire.AddrFrom(10, 0, 0, 1), Dst: wire.AddrFrom(1, 2, 3, 4)}
	tcp := wire.TCP{SrcPort: 1, DstPort: 443, Flags: wire.TCPSyn}
	if pkt, err := b.TCPPacket(&ip, &tcp, []byte("hi")); err == nil {
		f.Add(append([]byte(nil), pkt...))
	}
	udp := wire.UDP{SrcPort: 53, DstPort: 53}
	if pkt, err := b.UDPPacket(&ip, &udp, []byte{0, 1}); err == nil {
		f.Add(append([]byte(nil), pkt...))
	}
	parser := wire.NewLayerParser(wire.LayerEthernet)
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := parser.Parse(data)
		if err == nil && d == nil {
			t.Fatal("nil decode without error")
		}
	})
}

func FuzzTCPOptions(f *testing.F) {
	f.Add(wire.AppendTCPOptions(nil, wire.TCPOptions{MSS: 1460, SACKPermitted: true}))
	f.Add([]byte{2, 4, 5, 0xb4, 1, 1, 8, 10, 0, 0, 0, 1, 0, 0, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		wire.ParseTCPOptions(data)
	})
}
