package tlsx

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestServerHelloRoundTrip(t *testing.T) {
	rec := AppendServerHello(nil, VersionTLS12, "h2")
	h, err := ParseServerHello(rec)
	if err != nil {
		t.Fatalf("ParseServerHello: %v", err)
	}
	if h.ALPN != "h2" {
		t.Errorf("ALPN = %q", h.ALPN)
	}
	if h.Version != VersionTLS12 {
		t.Errorf("version = %#x", h.Version)
	}
}

func TestServerHelloNoALPN(t *testing.T) {
	rec := AppendServerHello(nil, VersionTLS12, "")
	h, err := ParseServerHello(rec)
	if err != nil {
		t.Fatal(err)
	}
	if h.ALPN != "" {
		t.Errorf("ALPN = %q, want empty", h.ALPN)
	}
}

func TestServerHelloRejectsClientHello(t *testing.T) {
	rec := AppendClientHello(nil, HelloSpec{SNI: "x.example"})
	if _, err := ParseServerHello(rec); !errors.Is(err, ErrNotTLS) {
		t.Errorf("err = %v, want ErrNotTLS", err)
	}
	// And vice versa.
	srv := AppendServerHello(nil, 0, "h2")
	if _, err := ParseClientHello(srv); !errors.Is(err, ErrNotTLS) {
		t.Errorf("client parse of server hello: err = %v, want ErrNotTLS", err)
	}
}

func TestServerHelloFuzzNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		ParseServerHello(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	base := AppendServerHello(nil, VersionTLS13, "spdy/3.1")
	for i := range base {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0xFF
		ParseServerHello(mut)
	}
}

func TestRecordLen(t *testing.T) {
	rec := AppendClientHello(nil, HelloSpec{SNI: "host.example", ALPN: []string{"h2"}})
	n, complete := RecordLen(rec)
	if !complete || n != len(rec) {
		t.Errorf("RecordLen = %d,%v over %d bytes", n, complete, len(rec))
	}
	// A prefix is incomplete but reports the same total.
	n2, complete2 := RecordLen(rec[:20])
	if complete2 || n2 != n {
		t.Errorf("prefix RecordLen = %d,%v", n2, complete2)
	}
	if _, c := RecordLen(rec[:4]); c {
		t.Error("sub-header prefix reported complete")
	}
	// Trailing data beyond the record does not change the answer.
	ext := append(append([]byte(nil), rec...), 0xAA, 0xBB)
	n3, complete3 := RecordLen(ext)
	if !complete3 || n3 != n {
		t.Errorf("extended RecordLen = %d,%v", n3, complete3)
	}
}
