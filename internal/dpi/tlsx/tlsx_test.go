package tlsx

import (
	"crypto/tls"
	"errors"
	"net"
	"testing"
	"testing/quick"
)

func TestRoundTripSNIAndALPN(t *testing.T) {
	spec := HelloSpec{SNI: "scontent.cdninstagram.com", ALPN: []string{"h2", "http/1.1"}}
	rec := AppendClientHello(nil, spec)
	if !Sniff(rec) {
		t.Fatal("Sniff rejected our own hello")
	}
	h, err := ParseClientHello(rec)
	if err != nil {
		t.Fatalf("ParseClientHello: %v", err)
	}
	if h.SNI != spec.SNI {
		t.Errorf("SNI = %q, want %q", h.SNI, spec.SNI)
	}
	if len(h.ALPN) != 2 || h.ALPN[0] != "h2" || h.ALPN[1] != "http/1.1" {
		t.Errorf("ALPN = %v", h.ALPN)
	}
	if !h.ALPNContains("h2") || h.ALPNContains("spdy/3.1") {
		t.Errorf("ALPNContains wrong")
	}
	if h.FBZero {
		t.Error("FBZero true for plain TLS")
	}
	if h.Version != VersionTLS12 {
		t.Errorf("version = %#x, want TLS 1.2", h.Version)
	}
	if h.CipherLen != 4 {
		t.Errorf("CipherLen = %d, want 4", h.CipherLen)
	}
}

func TestFBZeroDetection(t *testing.T) {
	rec := AppendClientHello(nil, HelloSpec{SNI: "graph.facebook.com", FBZero: true})
	if !Sniff(rec) {
		t.Fatal("Sniff rejected FB-Zero hello")
	}
	h, err := ParseClientHello(rec)
	if err != nil {
		t.Fatalf("ParseClientHello: %v", err)
	}
	if !h.FBZero {
		t.Error("FBZero not detected")
	}
	if h.SNI != "graph.facebook.com" {
		t.Errorf("SNI = %q", h.SNI)
	}
}

func TestNoExtensions(t *testing.T) {
	rec := AppendClientHello(nil, HelloSpec{})
	h, err := ParseClientHello(rec)
	if err != nil {
		t.Fatalf("ParseClientHello: %v", err)
	}
	if h.SNI != "" || len(h.ALPN) != 0 {
		t.Errorf("unexpected extension data: %+v", h)
	}
}

func TestSniffRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x17, 0x03, 0x03, 0x00, 0x10},          // application data record
		{0x16, 0x09, 0x09, 0x00, 0x10},          // bogus version
		{0x16, 0x03, 0x01, 0xFF, 0xFF},          // implausible record length
		[]byte("GET / HTTP/1.1\r\nHost: x\r\n"), // HTTP
	}
	for i, c := range cases {
		if Sniff(c) {
			t.Errorf("case %d: Sniff accepted %v", i, c)
		}
	}
}

func TestParseRejectsNonHello(t *testing.T) {
	rec := AppendClientHello(nil, HelloSpec{SNI: "a.example"})
	rec[5] = HandshakeServerHello
	if _, err := ParseClientHello(rec); !errors.Is(err, ErrNotTLS) {
		t.Errorf("err = %v, want ErrNotTLS", err)
	}
	appData := []byte{0x17, 0x03, 0x03, 0x00, 0x01, 0x00}
	if _, err := ParseClientHello(appData); !errors.Is(err, ErrNotTLS) {
		t.Errorf("err = %v, want ErrNotTLS", err)
	}
}

func TestTruncationTolerance(t *testing.T) {
	// SNI appears before ALPN in our encoder; a capture cut inside the
	// ALPN extension must still yield the SNI.
	full := AppendClientHello(nil, HelloSpec{SNI: "www.youtube.com", ALPN: []string{"h2"}})
	for cut := len(full) - 1; cut > len(full)-8; cut-- {
		h, err := ParseClientHello(full[:cut])
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if h.SNI != "www.youtube.com" {
			t.Errorf("cut=%d: SNI lost: %q", cut, h.SNI)
		}
	}
	// Cut before the extensions entirely: parses, but empty SNI.
	h, err := ParseClientHello(full[:60])
	if err != nil {
		t.Fatalf("deep cut: %v", err)
	}
	if h.SNI != "" {
		t.Errorf("deep cut recovered SNI %q from nothing", h.SNI)
	}
}

// TestParseRealCryptoTLSHello feeds the parser a ClientHello produced
// by the standard library's TLS stack, ensuring interoperability with
// real-world handshakes, not just our own encoder.
func TestParseRealCryptoTLSHello(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		cfg := &tls.Config{
			ServerName: "edge-probe.test.example",
			NextProtos: []string{"h2", "http/1.1"},
			MinVersion: tls.VersionTLS12,
		}
		c := tls.Client(client, cfg)
		c.Handshake() // fails: our side never answers; we only need the bytes
		c.Close()
	}()
	buf := make([]byte, 8192)
	n, err := server.Read(buf)
	if err != nil {
		t.Fatalf("reading hello: %v", err)
	}
	// Unblock the client, which is waiting for a ServerHello that will
	// never come: closing our end fails its handshake immediately.
	server.Close()
	<-done
	if !Sniff(buf[:n]) {
		t.Fatal("Sniff rejected crypto/tls hello")
	}
	h, err := ParseClientHello(buf[:n])
	if err != nil {
		t.Fatalf("ParseClientHello: %v", err)
	}
	if h.SNI != "edge-probe.test.example" {
		t.Errorf("SNI = %q", h.SNI)
	}
	if !h.ALPNContains("h2") {
		t.Errorf("ALPN = %v, want h2 present", h.ALPN)
	}
}

// Property: every spec round-trips through encode+parse.
func TestHelloRoundTripProperty(t *testing.T) {
	protos := []string{"http/1.1", "h2", "spdy/3.1"}
	f := func(nameSeed uint16, useALPN, zero bool) bool {
		sni := ""
		if nameSeed%4 != 0 {
			sni = "host-" + string(rune('a'+nameSeed%26)) + ".example.com"
		}
		spec := HelloSpec{SNI: sni, FBZero: zero}
		if useALPN {
			spec.ALPN = protos[:1+nameSeed%3]
		}
		rec := AppendClientHello(nil, spec)
		h, err := ParseClientHello(rec)
		if err != nil {
			return false
		}
		if h.SNI != sni || h.FBZero != zero {
			return false
		}
		if len(h.ALPN) != len(spec.ALPN) {
			return false
		}
		for i := range h.ALPN {
			if h.ALPN[i] != spec.ALPN[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParserNeverPanicsOnFuzzedInput(t *testing.T) {
	f := func(data []byte) bool {
		ParseClientHello(data) // must not panic
		Sniff(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// And mutations of a valid hello.
	base := AppendClientHello(nil, HelloSpec{SNI: "x.example", ALPN: []string{"h2"}})
	for i := range base {
		for _, v := range []byte{0x00, 0xFF, base[i] ^ 0x80} {
			mut := make([]byte, len(base))
			copy(mut, base)
			mut[i] = v
			ParseClientHello(mut) // must not panic
		}
	}
}

func BenchmarkParseClientHello(b *testing.B) {
	rec := AppendClientHello(nil, HelloSpec{SNI: "scontent.xx.fbcdn.net", ALPN: []string{"h2", "http/1.1"}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseClientHello(rec); err != nil {
			b.Fatal(err)
		}
	}
}
