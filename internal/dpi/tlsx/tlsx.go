// Package tlsx parses the first bytes of a TLS session deeply enough
// for passive classification: the record header, the ClientHello with
// its Server Name Indication (SNI) and Application-Layer Protocol
// Negotiation (ALPN) extensions, and Facebook's "Zero" variant — a
// custom 0-RTT modification of TLS that the paper observes appearing
// suddenly in November 2016 (event F in Figure 8).
//
// The parser never allocates for the common path and never reads
// beyond the supplied bytes, so it is safe to feed reassembled or
// truncated segments straight from the capture path.
package tlsx

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Record content types.
const (
	RecordHandshake uint8 = 22
)

// Handshake message types.
const (
	HandshakeClientHello uint8 = 1
	HandshakeServerHello uint8 = 2
)

// Extension numbers the probe understands.
const (
	extServerName uint16 = 0
	extALPN       uint16 = 16
)

// TLS versions as they appear on the wire.
const (
	VersionSSL30 uint16 = 0x0300
	VersionTLS10 uint16 = 0x0301
	VersionTLS11 uint16 = 0x0302
	VersionTLS12 uint16 = 0x0303
	VersionTLS13 uint16 = 0x0304
	// VersionFBZero marks Facebook Zero protocol handshakes. Zero was
	// deployed without documentation; probes identify it by its
	// non-standard version field on TCP/443 traffic from Facebook apps.
	VersionFBZero uint16 = 0xFB00
)

// Errors returned by the parser.
var (
	ErrNotTLS    = errors.New("tlsx: not a TLS handshake")
	ErrTruncated = errors.New("tlsx: truncated handshake")
	ErrMalformed = errors.New("tlsx: malformed handshake")
)

// ClientHello holds the fields a passive probe extracts from the first
// client flight.
type ClientHello struct {
	Version    uint16 // legacy_version from the hello body
	SNI        string // server_name extension, "" when absent
	ALPN       []string
	CipherLen  int  // number of offered cipher suites
	FBZero     bool // true when the record carries the Zero variant
	SessionLen int  // session ID length (0-RTT resumption signal)
}

// ALPNContains reports whether proto was offered.
func (h *ClientHello) ALPNContains(proto string) bool {
	for _, p := range h.ALPN {
		if p == proto {
			return true
		}
	}
	return false
}

// Sniff reports whether data plausibly begins a TLS handshake record:
// content type 22, known version, sane length.
func Sniff(data []byte) bool {
	if len(data) < 5 {
		return false
	}
	if data[0] != RecordHandshake {
		return false
	}
	v := binary.BigEndian.Uint16(data[1:3])
	if v != VersionSSL30 && v != VersionTLS10 && v != VersionTLS11 &&
		v != VersionTLS12 && v != VersionTLS13 && v != VersionFBZero {
		return false
	}
	recLen := binary.BigEndian.Uint16(data[3:5])
	return recLen > 0 && recLen <= 16384+2048
}

// ParseClientHello parses a ClientHello from the start of a TLS stream
// (record header included). It tolerates captures that truncate the
// record — extensions present in the captured bytes are still
// extracted; missing ones simply stay empty — because a probe must
// classify what it sees, not what it wishes it saw. A nil error means
// the bytes were a ClientHello; check the individual fields for what
// was recovered.
func ParseClientHello(data []byte) (*ClientHello, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("%w: %d record bytes", ErrTruncated, len(data))
	}
	if data[0] != RecordHandshake {
		return nil, fmt.Errorf("%w: content type %d", ErrNotTLS, data[0])
	}
	recVersion := binary.BigEndian.Uint16(data[1:3])
	hello := &ClientHello{FBZero: recVersion == VersionFBZero}
	recLen := int(binary.BigEndian.Uint16(data[3:5]))
	body := data[5:]
	if recLen < len(body) {
		body = body[:recLen]
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: %d handshake bytes", ErrTruncated, len(body))
	}
	if body[0] != HandshakeClientHello {
		return nil, fmt.Errorf("%w: handshake type %d", ErrNotTLS, body[0])
	}
	hsLen := int(body[1])<<16 | int(body[2])<<8 | int(body[3])
	body = body[4:]
	if hsLen < len(body) {
		body = body[:hsLen]
	}
	// legacy_version (2) + random (32)
	if len(body) < 34 {
		return hello, nil // truncated before anything useful
	}
	hello.Version = binary.BigEndian.Uint16(body[0:2])
	if hello.Version == VersionFBZero {
		hello.FBZero = true
	}
	off := 34
	// session_id
	if off >= len(body) {
		return hello, nil
	}
	hello.SessionLen = int(body[off])
	off += 1 + hello.SessionLen
	// cipher_suites
	if off+2 > len(body) {
		return hello, nil
	}
	csLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	if csLen%2 != 0 {
		return nil, fmt.Errorf("%w: odd cipher_suites length %d", ErrMalformed, csLen)
	}
	hello.CipherLen = csLen / 2
	off += 2 + csLen
	// compression_methods
	if off >= len(body) {
		return hello, nil
	}
	compLen := int(body[off])
	off += 1 + compLen
	// extensions
	if off+2 > len(body) {
		return hello, nil
	}
	extLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	end := off + extLen
	if end > len(body) {
		end = len(body)
	}
	for off+4 <= end {
		extType := binary.BigEndian.Uint16(body[off : off+2])
		l := int(binary.BigEndian.Uint16(body[off+2 : off+4]))
		off += 4
		if off+l > end {
			break // extension truncated by the capture
		}
		ext := body[off : off+l]
		off += l
		switch extType {
		case extServerName:
			if name, err := parseSNI(ext); err == nil {
				hello.SNI = name
			}
		case extALPN:
			if protos, err := parseALPN(ext); err == nil {
				hello.ALPN = protos
			}
		}
	}
	return hello, nil
}

// parseSNI extracts the first host_name entry of a server_name
// extension body.
func parseSNI(ext []byte) (string, error) {
	if len(ext) < 2 {
		return "", ErrTruncated
	}
	listLen := int(binary.BigEndian.Uint16(ext[0:2]))
	ext = ext[2:]
	if listLen < len(ext) {
		ext = ext[:listLen]
	}
	for len(ext) >= 3 {
		nameType := ext[0]
		l := int(binary.BigEndian.Uint16(ext[1:3]))
		if 3+l > len(ext) {
			return "", ErrTruncated
		}
		if nameType == 0 { // host_name
			return string(ext[3 : 3+l]), nil
		}
		ext = ext[3+l:]
	}
	return "", ErrMalformed
}

// parseALPN extracts the protocol list of an ALPN extension body.
func parseALPN(ext []byte) ([]string, error) {
	if len(ext) < 2 {
		return nil, ErrTruncated
	}
	listLen := int(binary.BigEndian.Uint16(ext[0:2]))
	ext = ext[2:]
	if listLen < len(ext) {
		ext = ext[:listLen]
	}
	var out []string
	for len(ext) > 0 {
		l := int(ext[0])
		if 1+l > len(ext) {
			return out, ErrTruncated
		}
		if l == 0 {
			return out, ErrMalformed
		}
		out = append(out, string(ext[1:1+l]))
		ext = ext[1+l:]
	}
	return out, nil
}

// HelloSpec describes a ClientHello to synthesise. The traffic
// simulator uses it to emit byte-accurate handshakes for the probe to
// parse — the reproduction's substitute for real captured TLS.
type HelloSpec struct {
	Version uint16
	SNI     string
	ALPN    []string
	FBZero  bool
}

// AppendClientHello builds a wire-format ClientHello record for spec
// and appends it to dst.
func AppendClientHello(dst []byte, spec HelloSpec) []byte {
	version := spec.Version
	if version == 0 {
		version = VersionTLS12
	}
	recVersion := uint16(VersionTLS10)
	if spec.FBZero {
		recVersion = VersionFBZero
		version = VersionFBZero
	}

	// Extensions block.
	var ext []byte
	if spec.SNI != "" {
		name := []byte(spec.SNI)
		entry := make([]byte, 0, 5+len(name))
		entry = binary.BigEndian.AppendUint16(entry, uint16(3+len(name))) // list length
		entry = append(entry, 0)                                          // host_name
		entry = binary.BigEndian.AppendUint16(entry, uint16(len(name)))
		entry = append(entry, name...)
		ext = binary.BigEndian.AppendUint16(ext, extServerName)
		ext = binary.BigEndian.AppendUint16(ext, uint16(len(entry)))
		ext = append(ext, entry...)
	}
	if len(spec.ALPN) > 0 {
		var list []byte
		for _, p := range spec.ALPN {
			list = append(list, byte(len(p)))
			list = append(list, p...)
		}
		body := binary.BigEndian.AppendUint16(nil, uint16(len(list)))
		body = append(body, list...)
		ext = binary.BigEndian.AppendUint16(ext, extALPN)
		ext = binary.BigEndian.AppendUint16(ext, uint16(len(body)))
		ext = append(ext, body...)
	}

	// ClientHello body.
	body := make([]byte, 0, 64+len(ext))
	body = binary.BigEndian.AppendUint16(body, version)
	var random [32]byte
	for i := range random {
		random[i] = byte(i*7 + 13) // fixed: probes never check entropy
	}
	body = append(body, random[:]...)
	body = append(body, 0) // empty session_id
	suites := []uint16{0x1301, 0x1302, 0xc02f, 0xc030}
	body = binary.BigEndian.AppendUint16(body, uint16(2*len(suites)))
	for _, s := range suites {
		body = binary.BigEndian.AppendUint16(body, s)
	}
	body = append(body, 1, 0) // null compression only
	body = binary.BigEndian.AppendUint16(body, uint16(len(ext)))
	body = append(body, ext...)

	// Handshake + record framing.
	dst = append(dst, RecordHandshake)
	dst = binary.BigEndian.AppendUint16(dst, recVersion)
	dst = binary.BigEndian.AppendUint16(dst, uint16(4+len(body)))
	dst = append(dst, HandshakeClientHello, byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	return append(dst, body...)
}
