package tlsx

import (
	"encoding/binary"
	"fmt"
)

// ServerHello holds the fields a probe reads from the server's first
// flight: the negotiated version and, crucially, the ALPN protocol the
// server *selected* — the ground truth for labelling a session HTTP/2
// vs SPDY vs plain TLS when the client offered several.
type ServerHello struct {
	Version uint16
	ALPN    string // selected protocol, "" when the extension is absent
}

// ParseServerHello parses a ServerHello from the start of a server
// stream (record header included). Like ParseClientHello it extracts
// what the captured bytes contain and fails only when the bytes are
// not a ServerHello at all.
func ParseServerHello(data []byte) (*ServerHello, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("%w: %d record bytes", ErrTruncated, len(data))
	}
	if data[0] != RecordHandshake {
		return nil, fmt.Errorf("%w: content type %d", ErrNotTLS, data[0])
	}
	recLen := int(binary.BigEndian.Uint16(data[3:5]))
	body := data[5:]
	if recLen < len(body) {
		body = body[:recLen]
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: %d handshake bytes", ErrTruncated, len(body))
	}
	if body[0] != HandshakeServerHello {
		return nil, fmt.Errorf("%w: handshake type %d", ErrNotTLS, body[0])
	}
	hsLen := int(body[1])<<16 | int(body[2])<<8 | int(body[3])
	body = body[4:]
	if hsLen < len(body) {
		body = body[:hsLen]
	}
	hello := &ServerHello{}
	// legacy_version (2) + random (32)
	if len(body) < 34 {
		return hello, nil
	}
	hello.Version = binary.BigEndian.Uint16(body[0:2])
	off := 34
	// session_id
	if off >= len(body) {
		return hello, nil
	}
	off += 1 + int(body[off])
	// cipher_suite (2) + compression_method (1)
	off += 3
	// extensions
	if off+2 > len(body) {
		return hello, nil
	}
	extLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	end := off + extLen
	if end > len(body) {
		end = len(body)
	}
	for off+4 <= end {
		extType := binary.BigEndian.Uint16(body[off : off+2])
		l := int(binary.BigEndian.Uint16(body[off+2 : off+4]))
		off += 4
		if off+l > end {
			break
		}
		if extType == extALPN {
			if protos, err := parseALPN(body[off : off+l]); err == nil && len(protos) > 0 {
				hello.ALPN = protos[0] // servers select exactly one
			}
		}
		off += l
	}
	return hello, nil
}

// AppendServerHello builds a wire-format ServerHello record selecting
// the given ALPN protocol ("" omits the extension) and appends it to
// dst. The traffic simulator uses it so packet-path sessions carry the
// server's side of the negotiation, as real captures do.
func AppendServerHello(dst []byte, version uint16, alpn string) []byte {
	if version == 0 {
		version = VersionTLS12
	}
	var ext []byte
	if alpn != "" {
		list := append([]byte{byte(len(alpn))}, alpn...)
		body := binary.BigEndian.AppendUint16(nil, uint16(len(list)))
		body = append(body, list...)
		ext = binary.BigEndian.AppendUint16(ext, extALPN)
		ext = binary.BigEndian.AppendUint16(ext, uint16(len(body)))
		ext = append(ext, body...)
	}
	body := make([]byte, 0, 48+len(ext))
	body = binary.BigEndian.AppendUint16(body, version)
	var random [32]byte
	for i := range random {
		random[i] = byte(i*11 + 5)
	}
	body = append(body, random[:]...)
	body = append(body, 0)                             // empty session_id
	body = binary.BigEndian.AppendUint16(body, 0xc02f) // cipher_suite
	body = append(body, 0)                             // null compression
	body = binary.BigEndian.AppendUint16(body, uint16(len(ext)))
	body = append(body, ext...)

	dst = append(dst, RecordHandshake)
	dst = binary.BigEndian.AppendUint16(dst, VersionTLS12)
	dst = binary.BigEndian.AppendUint16(dst, uint16(4+len(body)))
	dst = append(dst, HandshakeServerHello, byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	return append(dst, body...)
}

// RecordLen reports the total byte length of the first TLS record in
// data (header included), and whether data already contains it in
// full. The probe's reassembler uses it to know when a split
// ClientHello is complete.
func RecordLen(data []byte) (n int, complete bool) {
	if len(data) < 5 {
		return 0, false
	}
	n = 5 + int(binary.BigEndian.Uint16(data[3:5]))
	return n, len(data) >= n
}
