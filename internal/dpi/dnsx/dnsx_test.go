package dnsx

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	buf, err := AppendQuery(nil, 0x1234, "www.netflix.com")
	if err != nil {
		t.Fatalf("AppendQuery: %v", err)
	}
	m, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if m.ID != 0x1234 {
		t.Errorf("ID = %#x, want 0x1234", m.ID)
	}
	if m.Response {
		t.Error("query decoded as response")
	}
	if got := m.QueryName(); got != "www.netflix.com" {
		t.Errorf("QueryName = %q", got)
	}
	if len(m.Questions) != 1 || m.Questions[0].Type != TypeA || m.Questions[0].Class != ClassIN {
		t.Errorf("question = %+v", m.Questions)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	ip := [4]byte{198, 38, 120, 10}
	buf, err := AppendResponse(nil, 7, "nflxvideo.net", ip, 300)
	if err != nil {
		t.Fatalf("AppendResponse: %v", err)
	}
	m, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !m.Response {
		t.Error("response decoded as query")
	}
	if len(m.Answers) != 1 {
		t.Fatalf("answers = %d, want 1", len(m.Answers))
	}
	a := m.Answers[0]
	if a.Name != "nflxvideo.net" {
		t.Errorf("answer name = %q (compression pointer decode)", a.Name)
	}
	if a.IP != ip {
		t.Errorf("answer IP = %v, want %v", a.IP, ip)
	}
	if a.TTL != 300 {
		t.Errorf("TTL = %d, want 300", a.TTL)
	}
}

func TestNameRoundTripProperty(t *testing.T) {
	// Any well-formed name (labels of [a-z0-9]{1..20}) survives a
	// query round trip.
	f := func(seed uint32, depth uint8) bool {
		n := int(depth%5) + 1
		labels := make([]string, n)
		r := seed
		for i := range labels {
			r = r*1664525 + 1013904223
			l := int(r%19) + 1
			b := make([]byte, l)
			for j := range b {
				r = r*1664525 + 1013904223
				b[j] = "abcdefghijklmnopqrstuvwxyz0123456789"[r%36]
			}
			labels[i] = string(b)
		}
		name := strings.Join(labels, ".")
		buf, err := AppendQuery(nil, 1, name)
		if err != nil {
			return false
		}
		m, err := Decode(buf)
		if err != nil {
			return false
		}
		return m.QueryName() == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRejectsBadLabels(t *testing.T) {
	if _, err := AppendQuery(nil, 1, "bad..name"); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty label: err = %v, want ErrMalformed", err)
	}
	long := strings.Repeat("a", 64)
	if _, err := AppendQuery(nil, 1, long+".com"); !errors.Is(err, ErrMalformed) {
		t.Errorf("64-byte label: err = %v, want ErrMalformed", err)
	}
	huge := strings.Repeat("abcdefgh.", 40) + "com"
	if _, err := AppendQuery(nil, 1, huge); !errors.Is(err, ErrMalformed) {
		t.Errorf("over-long name: err = %v, want ErrMalformed", err)
	}
}

func TestTrailingDotAccepted(t *testing.T) {
	buf, err := AppendQuery(nil, 1, "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.QueryName() != "example.com" {
		t.Errorf("QueryName = %q", m.QueryName())
	}
}

func TestDecodeTruncated(t *testing.T) {
	buf, err := AppendResponse(nil, 7, "example.com", [4]byte{1, 2, 3, 4}, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 5, 11, len(buf) - 1} {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Errorf("Decode of %d-byte prefix succeeded", cut)
		}
	}
}

func TestDecodeRejectsPointerLoop(t *testing.T) {
	// Hand-craft a message whose question name is a pointer to itself.
	buf := make([]byte, 16)
	binary.BigEndian.PutUint16(buf[0:2], 1)
	binary.BigEndian.PutUint16(buf[4:6], 1)           // QDCOUNT=1
	binary.BigEndian.PutUint16(buf[12:14], 0xC000|12) // pointer to itself
	if _, err := Decode(buf); !errors.Is(err, ErrMalformed) {
		t.Errorf("self-pointer: err = %v, want ErrMalformed", err)
	}
}

func TestDecodeRejectsImplausibleCounts(t *testing.T) {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint16(buf[4:6], 60000)
	if _, err := Decode(buf); !errors.Is(err, ErrMalformed) {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

func TestARecordsCNAMEChain(t *testing.T) {
	// Build a response manually: question www.facebook.com, CNAME to
	// star-mini.c10r.facebook.com, then an A for the CNAME target.
	m := &Message{
		Response: true,
		Answers: []Answer{
			{Name: "www.facebook.com", Type: TypeCNAME, Data: "star-mini.c10r.facebook.com"},
			{Name: "star-mini.c10r.facebook.com", Type: TypeA, IP: [4]byte{31, 13, 86, 36}},
		},
	}
	recs := m.ARecords()
	if len(recs) != 1 {
		t.Fatalf("ARecords = %d, want 1", len(recs))
	}
	if recs[0].Name != "www.facebook.com" {
		t.Errorf("resolved name = %q, want the queried alias", recs[0].Name)
	}
}

func TestARecordsNoCNAME(t *testing.T) {
	m := &Message{Answers: []Answer{{Name: "x.com", Type: TypeA, IP: [4]byte{9, 9, 9, 9}}}}
	recs := m.ARecords()
	if len(recs) != 1 || recs[0].Name != "x.com" {
		t.Errorf("ARecords = %+v", recs)
	}
}

func BenchmarkDecodeResponse(b *testing.B) {
	buf, err := AppendResponse(nil, 7, "scontent.xx.fbcdn.net", [4]byte{31, 13, 86, 4}, 60)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
