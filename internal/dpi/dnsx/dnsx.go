// Package dnsx implements the subset of the DNS wire format an edge
// probe needs: encoding queries and responses for A/AAAA/CNAME records,
// and decoding them back, including RFC 1035 name compression. The
// probe uses it to feed DN-Hunter — the DNS-based server-name
// annotation mechanism described in section 2.1 of the paper — and the
// traffic simulator uses it to synthesise resolver traffic.
package dnsx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Record types understood by this package.
const (
	TypeA     uint16 = 1
	TypeCNAME uint16 = 5
	TypeAAAA  uint16 = 28
)

// ClassIN is the Internet class, the only one in real traffic.
const ClassIN uint16 = 1

// Errors returned by the decoder.
var (
	ErrTruncated = errors.New("dnsx: truncated message")
	ErrMalformed = errors.New("dnsx: malformed message")
)

// maxNameLen bounds an encoded domain name per RFC 1035.
const maxNameLen = 255

// Question is a DNS question section entry.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// Answer is a DNS resource record from the answer section. Data holds
// the IPv4 address for TypeA, the target name for TypeCNAME.
type Answer struct {
	Name string
	Type uint16
	TTL  uint32
	IP   [4]byte // valid when Type == TypeA
	Data string  // valid when Type == TypeCNAME
}

// Message is a decoded DNS message (only the sections the probe uses).
type Message struct {
	ID        uint16
	Response  bool
	RCode     uint8
	Questions []Question
	Answers   []Answer
}

// header flag bits.
const (
	flagQR uint16 = 1 << 15
	flagRD uint16 = 1 << 8
	flagRA uint16 = 1 << 7
)

// AppendQuery encodes a standard recursive query for an A record of
// name and appends it to dst.
func AppendQuery(dst []byte, id uint16, name string) ([]byte, error) {
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[0:2], id)
	binary.BigEndian.PutUint16(hdr[2:4], flagRD)
	binary.BigEndian.PutUint16(hdr[4:6], 1) // QDCOUNT
	dst = append(dst, hdr[:]...)
	var err error
	dst, err = appendName(dst, name)
	if err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint16(dst, TypeA)
	dst = binary.BigEndian.AppendUint16(dst, ClassIN)
	return dst, nil
}

// AppendResponse encodes a response to a query for name, answering
// with a single A record holding ip, and appends it to dst. The
// question is echoed, and the answer name uses a compression pointer
// to it, as real resolvers do.
func AppendResponse(dst []byte, id uint16, name string, ip [4]byte, ttl uint32) ([]byte, error) {
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[0:2], id)
	binary.BigEndian.PutUint16(hdr[2:4], flagQR|flagRD|flagRA)
	binary.BigEndian.PutUint16(hdr[4:6], 1) // QDCOUNT
	binary.BigEndian.PutUint16(hdr[6:8], 1) // ANCOUNT
	base := len(dst)
	dst = append(dst, hdr[:]...)
	nameOff := len(dst) - base
	var err error
	dst, err = appendName(dst, name)
	if err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint16(dst, TypeA)
	dst = binary.BigEndian.AppendUint16(dst, ClassIN)
	// Answer: pointer to the question name.
	dst = binary.BigEndian.AppendUint16(dst, 0xC000|uint16(nameOff))
	dst = binary.BigEndian.AppendUint16(dst, TypeA)
	dst = binary.BigEndian.AppendUint16(dst, ClassIN)
	dst = binary.BigEndian.AppendUint32(dst, ttl)
	dst = binary.BigEndian.AppendUint16(dst, 4)
	dst = append(dst, ip[:]...)
	return dst, nil
}

// appendName encodes name in DNS label format.
func appendName(dst []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(dst, 0), nil
	}
	if len(name)+2 > maxNameLen {
		return nil, fmt.Errorf("dnsx: name %q too long: %w", name, ErrMalformed)
	}
	for _, label := range strings.Split(name, ".") {
		if label == "" || len(label) > 63 {
			return nil, fmt.Errorf("dnsx: bad label %q in %q: %w", label, name, ErrMalformed)
		}
		dst = append(dst, byte(len(label)))
		dst = append(dst, label...)
	}
	return append(dst, 0), nil
}

// Decode parses a DNS message. It is tolerant of trailing sections it
// does not understand (NS/AR records are skipped by count accounting
// only when parseable; otherwise decoding stops after the answers).
func Decode(data []byte) (*Message, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("dnsx: message %d bytes: %w", len(data), ErrTruncated)
	}
	m := &Message{ID: binary.BigEndian.Uint16(data[0:2])}
	flags := binary.BigEndian.Uint16(data[2:4])
	m.Response = flags&flagQR != 0
	m.RCode = uint8(flags & 0x000f)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	if qd > 32 || an > 256 {
		return nil, fmt.Errorf("dnsx: implausible counts qd=%d an=%d: %w", qd, an, ErrMalformed)
	}
	off := 12
	for i := 0; i < qd; i++ {
		name, n, err := decodeName(data, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+4 > len(data) {
			return nil, fmt.Errorf("dnsx: question %d: %w", i, ErrTruncated)
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off : off+2]),
			Class: binary.BigEndian.Uint16(data[off+2 : off+4]),
		})
		off += 4
	}
	for i := 0; i < an; i++ {
		name, n, err := decodeName(data, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+10 > len(data) {
			return nil, fmt.Errorf("dnsx: answer %d header: %w", i, ErrTruncated)
		}
		a := Answer{Name: name}
		a.Type = binary.BigEndian.Uint16(data[off : off+2])
		a.TTL = binary.BigEndian.Uint32(data[off+4 : off+8])
		rdlen := int(binary.BigEndian.Uint16(data[off+8 : off+10]))
		off += 10
		if off+rdlen > len(data) {
			return nil, fmt.Errorf("dnsx: answer %d rdata: %w", i, ErrTruncated)
		}
		switch a.Type {
		case TypeA:
			if rdlen != 4 {
				return nil, fmt.Errorf("dnsx: A record rdlength %d: %w", rdlen, ErrMalformed)
			}
			copy(a.IP[:], data[off:off+4])
		case TypeCNAME:
			target, _, err := decodeName(data, off)
			if err != nil {
				return nil, err
			}
			a.Data = target
		}
		off += rdlen
		m.Answers = append(m.Answers, a)
	}
	return m, nil
}

// decodeName parses a possibly-compressed name starting at off,
// returning the dotted name and the offset just past it in the
// uncompressed stream.
func decodeName(data []byte, off int) (string, int, error) {
	var sb strings.Builder
	end := -1 // where parsing resumes after the first pointer
	hops := 0
	for {
		if off >= len(data) {
			return "", 0, fmt.Errorf("dnsx: name runs past message: %w", ErrTruncated)
		}
		b := data[off]
		switch {
		case b == 0:
			if end == -1 {
				end = off + 1
			}
			return sb.String(), end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(data) {
				return "", 0, fmt.Errorf("dnsx: pointer at end of message: %w", ErrTruncated)
			}
			if end == -1 {
				end = off + 2
			}
			ptr := int(binary.BigEndian.Uint16(data[off:off+2]) & 0x3FFF)
			if ptr >= off {
				return "", 0, fmt.Errorf("dnsx: forward compression pointer: %w", ErrMalformed)
			}
			hops++
			if hops > 16 {
				return "", 0, fmt.Errorf("dnsx: compression pointer loop: %w", ErrMalformed)
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnsx: reserved label type %#x: %w", b&0xC0, ErrMalformed)
		default:
			l := int(b)
			if off+1+l > len(data) {
				return "", 0, fmt.Errorf("dnsx: label overruns message: %w", ErrTruncated)
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(data[off+1 : off+1+l])
			if sb.Len() > maxNameLen {
				return "", 0, fmt.Errorf("dnsx: name too long: %w", ErrMalformed)
			}
			off += 1 + l
		}
	}
}

// QueryName returns the name of the first question, or "".
func (m *Message) QueryName() string {
	if len(m.Questions) == 0 {
		return ""
	}
	return m.Questions[0].Name
}

// ARecords returns every (name, ip) pair answered with an A record,
// resolving CNAME chains so the returned name is the one the client
// asked for whenever the chain is complete.
func (m *Message) ARecords() []Answer {
	// Map CNAME target -> queried alias (reverse chain).
	alias := make(map[string]string)
	for _, a := range m.Answers {
		if a.Type == TypeCNAME {
			alias[a.Data] = a.Name
		}
	}
	var out []Answer
	for _, a := range m.Answers {
		if a.Type != TypeA {
			continue
		}
		name := a.Name
		for i := 0; i < 16; i++ { // bounded chain walk
			from, ok := alias[name]
			if !ok {
				break
			}
			name = from
		}
		out = append(out, Answer{Name: name, Type: TypeA, TTL: a.TTL, IP: a.IP})
	}
	return out
}
