package quicx

import (
	"testing"
	"testing/quick"
)

func TestGQUICRoundTrip(t *testing.T) {
	pkt := AppendGQUIC(nil, "Q039", 0xDEADBEEFCAFE, 100)
	if !Sniff(pkt) {
		t.Fatal("Sniff rejected gQUIC packet")
	}
	h, err := Parse(pkt)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if h.Dialect != DialectGQUIC {
		t.Errorf("dialect = %v", h.Dialect)
	}
	if h.Version != "Q039" {
		t.Errorf("version = %q", h.Version)
	}
	if h.ConnectionID != 0xDEADBEEFCAFE {
		t.Errorf("cid = %#x", h.ConnectionID)
	}
	if !h.VersionBit {
		t.Error("version bit not reported")
	}
}

func TestGQUICVersionDefaulted(t *testing.T) {
	pkt := AppendGQUIC(nil, "bogus", 1, 10)
	h, err := Parse(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != "Q039" {
		t.Errorf("version = %q, want default Q039", h.Version)
	}
}

func TestIETFRoundTrip(t *testing.T) {
	pkt := AppendIETF(nil, 1, 0x1122334455667788, 60)
	if !Sniff(pkt) {
		t.Fatal("Sniff rejected IETF packet")
	}
	h, err := Parse(pkt)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if h.Dialect != DialectIETF {
		t.Errorf("dialect = %v", h.Dialect)
	}
	if h.Version != "v1" {
		t.Errorf("version = %q", h.Version)
	}
	if h.ConnectionID != 0x1122334455667788 {
		t.Errorf("cid = %#x", h.ConnectionID)
	}
}

func TestSniffRejectsOtherUDP(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00},                     // DNS-ish start, no CID flag
		{0x04, 0x01, 0x02},         // unknown public flag bits... 0x04 is unused
		[]byte("\x12\x34\x01\x00"), // DNS header
	}
	for i, c := range cases {
		if Sniff(c) {
			t.Errorf("case %d: Sniff accepted %v", i, c)
		}
	}
}

func TestIETFRejectsFixedBitClear(t *testing.T) {
	pkt := AppendIETF(nil, 1, 7, 10)
	pkt[0] &^= 0x40
	if _, err := Parse(pkt); err == nil {
		t.Error("fixed-bit-clear packet parsed")
	}
	if Sniff(pkt) {
		t.Error("Sniff accepted fixed-bit-clear packet")
	}
}

func TestParseTruncated(t *testing.T) {
	full := AppendGQUIC(nil, "Q043", 7, 0)
	for cut := 1; cut < len(full); cut++ {
		if _, err := Parse(full[:cut]); err == nil && cut < 13 {
			t.Errorf("cut=%d parsed without error", cut)
		}
	}
}

func TestDialectString(t *testing.T) {
	if DialectGQUIC.String() != "gquic" || DialectIETF.String() != "ietf-quic" || DialectUnknown.String() != "unknown" {
		t.Error("Dialect.String wrong")
	}
}

func TestRoundTripProperty(t *testing.T) {
	versions := []string{"Q035", "Q039", "Q043", "Q046"}
	f := func(cid uint64, vi uint8, ietf bool, payload uint8) bool {
		n := int(payload % 64)
		if ietf {
			pkt := AppendIETF(nil, uint32(vi)+1, cid, n)
			h, err := Parse(pkt)
			return err == nil && h.Dialect == DialectIETF && h.ConnectionID == cid
		}
		v := versions[vi%4]
		pkt := AppendGQUIC(nil, v, cid, n)
		h, err := Parse(pkt)
		return err == nil && h.Dialect == DialectGQUIC && h.Version == v && h.ConnectionID == cid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParserNeverPanicsOnFuzzedInput(t *testing.T) {
	f := func(data []byte) bool {
		Parse(data)
		Sniff(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseGQUIC(b *testing.B) {
	pkt := AppendGQUIC(nil, "Q039", 0xABCDEF, 1200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
