// Package quicx parses QUIC public headers as seen by a passive probe
// on UDP/443: the original Google QUIC ("gQUIC") public header, whose
// version tag the paper's probes used to track the QUIC deployment,
// and the IETF QUIC long header that later replaced it. It also
// synthesises both, for the traffic simulator.
//
// Only the clear-text public header is parsed; everything after it is
// encrypted and invisible to a probe, exactly as in the paper.
package quicx

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by the parser.
var (
	ErrNotQUIC   = errors.New("quicx: not a QUIC public header")
	ErrTruncated = errors.New("quicx: truncated header")
)

// gQUIC public flags.
const (
	gquicFlagVersion uint8 = 0x01
	gquicFlagReset   uint8 = 0x02
	gquicFlagCID8    uint8 = 0x08
)

// ietfLongHeaderForm is the high bit of the first byte of an IETF QUIC
// long header; the next bit is always set ("fixed bit").
const (
	ietfFormBit  uint8 = 0x80
	ietfFixedBit uint8 = 0x40
)

// Dialect tells which flavour of QUIC a header belongs to.
type Dialect uint8

// Dialects.
const (
	DialectUnknown Dialect = iota
	DialectGQUIC           // Google QUIC (Q0xx versions), 2013-2018 era
	DialectIETF            // IETF QUIC long header
)

// String names the dialect.
func (d Dialect) String() string {
	switch d {
	case DialectGQUIC:
		return "gquic"
	case DialectIETF:
		return "ietf-quic"
	default:
		return "unknown"
	}
}

// Header is a decoded QUIC public header.
type Header struct {
	Dialect      Dialect
	Version      string // "Q039" for gQUIC, "v1" style for IETF, "" when absent
	ConnectionID uint64 // gQUIC 8-byte CID (0 when absent); IETF DCID folded to 8 bytes
	VersionBit   bool   // client set the version-present flag (first packets)
}

// Sniff reports whether data on UDP/443 plausibly starts a QUIC packet
// of either dialect.
func Sniff(data []byte) bool {
	if len(data) < 1 {
		return false
	}
	b0 := data[0]
	if b0&ietfFormBit != 0 {
		return b0&ietfFixedBit != 0 && len(data) >= 7
	}
	// gQUIC: public flags with only known bits, version flag packets
	// carry "Q" at the version offset.
	if b0&^(gquicFlagVersion|gquicFlagReset|gquicFlagCID8|0x30) != 0 {
		return false
	}
	if b0&gquicFlagVersion != 0 {
		off := 1
		if b0&gquicFlagCID8 != 0 {
			off += 8
		}
		return len(data) >= off+4 && data[off] == 'Q'
	}
	return b0&gquicFlagCID8 != 0 && len(data) >= 9
}

// Parse decodes the public header of either dialect.
func Parse(data []byte) (*Header, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("%w: empty datagram", ErrTruncated)
	}
	if data[0]&ietfFormBit != 0 {
		return parseIETF(data)
	}
	return parseGQUIC(data)
}

func parseGQUIC(data []byte) (*Header, error) {
	flags := data[0]
	h := &Header{Dialect: DialectGQUIC}
	off := 1
	if flags&gquicFlagCID8 != 0 {
		if len(data) < off+8 {
			return nil, fmt.Errorf("%w: CID", ErrTruncated)
		}
		h.ConnectionID = binary.LittleEndian.Uint64(data[off : off+8])
		off += 8
	}
	if flags&gquicFlagVersion != 0 {
		h.VersionBit = true
		if len(data) < off+4 {
			return nil, fmt.Errorf("%w: version tag", ErrTruncated)
		}
		tag := data[off : off+4]
		if tag[0] != 'Q' {
			return nil, fmt.Errorf("%w: version tag %q", ErrNotQUIC, tag)
		}
		h.Version = string(tag)
	}
	return h, nil
}

func parseIETF(data []byte) (*Header, error) {
	if data[0]&ietfFixedBit == 0 {
		return nil, fmt.Errorf("%w: fixed bit clear", ErrNotQUIC)
	}
	if len(data) < 7 {
		return nil, fmt.Errorf("%w: long header", ErrTruncated)
	}
	h := &Header{Dialect: DialectIETF, VersionBit: true}
	ver := binary.BigEndian.Uint32(data[1:5])
	h.Version = fmt.Sprintf("v%d", ver)
	dcidLen := int(data[5])
	if dcidLen > 20 {
		return nil, fmt.Errorf("%w: DCID length %d", ErrNotQUIC, dcidLen)
	}
	if len(data) < 6+dcidLen {
		return nil, fmt.Errorf("%w: DCID", ErrTruncated)
	}
	var cid [8]byte
	copy(cid[:], data[6:6+dcidLen])
	h.ConnectionID = binary.LittleEndian.Uint64(cid[:])
	return h, nil
}

// AppendGQUIC builds a gQUIC client first-packet public header
// (version flag + 8-byte CID + version tag like "Q039") and appends
// it plus padding bytes of encrypted-looking payload to dst.
func AppendGQUIC(dst []byte, version string, cid uint64, payloadLen int) []byte {
	if len(version) != 4 || version[0] != 'Q' {
		version = "Q039"
	}
	dst = append(dst, gquicFlagVersion|gquicFlagCID8)
	dst = binary.LittleEndian.AppendUint64(dst, cid)
	dst = append(dst, version...)
	return appendOpaque(dst, payloadLen, cid)
}

// AppendIETF builds an IETF QUIC Initial-style long header and appends
// it plus opaque payload to dst.
func AppendIETF(dst []byte, version uint32, cid uint64, payloadLen int) []byte {
	dst = append(dst, ietfFormBit|ietfFixedBit)
	dst = binary.BigEndian.AppendUint32(dst, version)
	dst = append(dst, 8)
	dst = binary.LittleEndian.AppendUint64(dst, cid)
	return appendOpaque(dst, payloadLen, cid)
}

// appendOpaque pads with deterministic pseudo-random bytes standing in
// for the encrypted payload.
func appendOpaque(dst []byte, n int, seed uint64) []byte {
	x := seed*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		dst = append(dst, byte(x))
	}
	return dst
}
